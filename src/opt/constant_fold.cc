#include "opt/pass.hh"

#include <optional>

#include "vm/arith.hh"

namespace aregion::opt {

using namespace aregion::ir;

namespace {

/** Three-level constant lattice. */
struct LatVal
{
    enum Kind : uint8_t { Top, Const, Bot };
    Kind kind = Top;
    int64_t value = 0;

    static LatVal top() { return {}; }
    static LatVal bot() { return {Bot, 0}; }
    static LatVal c(int64_t v) { return {Const, v}; }

    bool
    operator==(const LatVal &o) const
    {
        return kind == o.kind && (kind != Const || value == o.value);
    }
};

LatVal
meet(const LatVal &a, const LatVal &b)
{
    if (a.kind == LatVal::Top)
        return b;
    if (b.kind == LatVal::Top)
        return a;
    if (a.kind == LatVal::Bot || b.kind == LatVal::Bot)
        return LatVal::bot();
    return a.value == b.value ? a : LatVal::bot();
}

/** Fold a pure binop; nullopt when not foldable (e.g. div by 0). */
std::optional<int64_t>
foldBinop(Op op, int64_t a, int64_t b)
{
    namespace arith = vm::arith;
    switch (op) {
      case Op::Add: return arith::javaAdd(a, b);
      case Op::Sub: return arith::javaSub(a, b);
      case Op::Mul: return arith::javaMul(a, b);
      case Op::Div:
        if (b == 0)
            return std::nullopt;
        return arith::javaDiv(a, b);
      case Op::Rem:
        if (b == 0)
            return std::nullopt;
        return arith::javaRem(a, b);
      case Op::And: return a & b;
      case Op::Or: return a | b;
      case Op::Xor: return a ^ b;
      case Op::Shl: return arith::javaShl(a, b);
      case Op::Shr: return arith::javaShr(a, b);
      case Op::CmpEq: return a == b;
      case Op::CmpNe: return a != b;
      case Op::CmpLt: return a < b;
      case Op::CmpLe: return a <= b;
      case Op::CmpGt: return a > b;
      case Op::CmpGe: return a >= b;
      default: return std::nullopt;
    }
}

bool
isBinop(Op op)
{
    switch (op) {
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::Rem: case Op::And: case Op::Or: case Op::Xor:
      case Op::Shl: case Op::Shr:
      case Op::CmpEq: case Op::CmpNe: case Op::CmpLt: case Op::CmpLe:
      case Op::CmpGt: case Op::CmpGe:
        return true;
      default:
        return false;
    }
}

/** State transfer for one instruction. */
void
transfer(const Instr &in, std::vector<LatVal> &state)
{
    if (in.dst == NO_VREG)
        return;
    auto get = [&](Vreg v) { return state[static_cast<size_t>(v)]; };
    LatVal out = LatVal::bot();
    if (in.op == Op::Const) {
        out = LatVal::c(in.imm);
    } else if (in.op == Op::Mov) {
        out = get(in.s0());
    } else if (isBinop(in.op)) {
        const LatVal a = get(in.s0());
        const LatVal b = get(in.s1());
        if (a.kind == LatVal::Const && b.kind == LatVal::Const) {
            const auto folded = foldBinop(in.op, a.value, b.value);
            out = folded ? LatVal::c(*folded) : LatVal::bot();
        } else if (a.kind == LatVal::Top || b.kind == LatVal::Top) {
            out = LatVal::top();
        }
    }
    state[static_cast<size_t>(in.dst)] = out;
}

} // namespace

bool
constantFold(Function &func)
{
    const int nv = func.numVregs();
    const auto rpo = func.reversePostOrder();
    const auto preds = func.computePreds();
    std::vector<uint8_t> reachable(static_cast<size_t>(func.numBlocks()),
                                   0);
    for (int b : rpo)
        reachable[static_cast<size_t>(b)] = 1;

    // IN states per block. Entry: args unknown, others zero (frames
    // are zero-initialised by every executor).
    std::vector<std::vector<LatVal>> in_state(
        static_cast<size_t>(func.numBlocks()));
    std::vector<LatVal> entry_state(static_cast<size_t>(nv),
                                    LatVal::c(0));
    for (int a = 0; a < func.numArgs; ++a)
        entry_state[static_cast<size_t>(a)] = LatVal::bot();
    in_state[static_cast<size_t>(func.entry)] = entry_state;

    // Iterate to fixpoint over RPO.
    bool dirty = true;
    int rounds = 0;
    while (dirty && ++rounds < 64) {
        dirty = false;
        for (int b : rpo) {
            auto &in = in_state[static_cast<size_t>(b)];
            if (b != func.entry) {
                std::vector<LatVal> merged(static_cast<size_t>(nv));
                bool first = true;
                for (int p : preds[static_cast<size_t>(b)]) {
                    if (!reachable[static_cast<size_t>(p)])
                        continue;
                    // OUT(p) recomputed on the fly.
                    auto out = in_state[static_cast<size_t>(p)];
                    if (out.empty())
                        continue;   // pred not yet visited
                    for (const Instr &pin : func.block(p).instrs)
                        transfer(pin, out);
                    if (first) {
                        merged = out;
                        first = false;
                    } else {
                        for (size_t v = 0; v < merged.size(); ++v)
                            merged[v] = meet(merged[v], out[v]);
                    }
                }
                if (first)
                    continue;       // no visited preds yet
                if (merged != in)
                    dirty = true;
                in = std::move(merged);
            }
        }
    }

    // Rewrite using the converged IN states.
    bool changed = false;
    for (int b : rpo) {
        auto state = in_state[static_cast<size_t>(b)];
        if (state.empty())
            continue;
        Block &blk = func.block(b);
        for (Instr &in : blk.instrs) {
            auto cst = [&](Vreg v) -> std::optional<int64_t> {
                const LatVal &lv = state[static_cast<size_t>(v)];
                if (lv.kind == LatVal::Const)
                    return lv.value;
                return std::nullopt;
            };
            auto to_const = [&](Instr &target, int64_t value) {
                target.op = Op::Const;
                target.srcs.clear();
                target.imm = value;
                changed = true;
            };
            auto to_mov = [&](Instr &target, Vreg src) {
                target.op = Op::Mov;
                target.srcs = {src};
                target.imm = 0;
                changed = true;
            };

            if (isBinop(in.op)) {
                const auto a = cst(in.s0());
                const auto b2 = cst(in.s1());
                if (a && b2) {
                    if (const auto f = foldBinop(in.op, *a, *b2))
                        to_const(in, *f);
                } else if (b2) {
                    // Algebraic identities with a constant rhs.
                    if ((in.op == Op::Add || in.op == Op::Sub ||
                         in.op == Op::Or || in.op == Op::Xor ||
                         in.op == Op::Shl || in.op == Op::Shr) &&
                        *b2 == 0) {
                        to_mov(in, in.s0());
                    } else if (in.op == Op::Mul && *b2 == 1) {
                        to_mov(in, in.s0());
                    } else if ((in.op == Op::Mul || in.op == Op::And) &&
                               *b2 == 0) {
                        to_const(in, 0);
                    }
                } else if (a) {
                    if (in.op == Op::Add && *a == 0)
                        to_mov(in, in.s1());
                    else if (in.op == Op::Mul && *a == 1)
                        to_mov(in, in.s1());
                    else if ((in.op == Op::Mul || in.op == Op::And) &&
                             *a == 0)
                        to_const(in, 0);
                }
            } else if (in.op == Op::Mov) {
                if (const auto a = cst(in.s0()))
                    to_const(in, *a);
            } else if (in.op == Op::Assert) {
                // An assert that provably never fires (respecting
                // its polarity) is dropped via a DCE-able rewrite.
                const auto a = cst(in.s0());
                if (a && (in.imm ? *a != 0 : *a == 0)) {
                    in.op = Op::Const;
                    in.dst = func.newVreg();
                    in.srcs.clear();
                    in.imm = 0;
                    changed = true;
                    // dst grew past `state`; extend.
                    state.resize(static_cast<size_t>(func.numVregs()),
                                 LatVal::bot());
                }
            } else if (in.op == Op::BoundsCheck) {
                const auto idx = cst(in.s0());
                const auto len = cst(in.s1());
                if (idx && len && *idx >= 0 && *idx < *len) {
                    in.op = Op::Const;
                    in.dst = func.newVreg();
                    in.srcs.clear();
                    in.imm = 0;
                    changed = true;
                    state.resize(static_cast<size_t>(func.numVregs()),
                                 LatVal::bot());
                }
            } else if (in.op == Op::DivCheck || in.op == Op::SizeCheck) {
                const auto a = cst(in.s0());
                const bool passes =
                    a && ((in.op == Op::DivCheck && *a != 0) ||
                          (in.op == Op::SizeCheck && *a >= 0));
                if (passes) {
                    in.op = Op::Const;
                    in.dst = func.newVreg();
                    in.srcs.clear();
                    in.imm = 0;
                    changed = true;
                    state.resize(static_cast<size_t>(func.numVregs()),
                                 LatVal::bot());
                }
            } else if (in.op == Op::Branch) {
                if (const auto a = cst(in.s0())) {
                    const int keep = *a != 0 ? 0 : 1;
                    Block &owner = blk;
                    const int target = owner.succs[
                        static_cast<size_t>(keep)];
                    in.op = Op::Jump;
                    in.srcs.clear();
                    owner.succs = {target};
                    owner.succCount = {owner.execCount};
                    changed = true;
                }
            }
            transfer(in, state);
        }
    }

    if (changed)
        func.compact();
    return changed;
}

} // namespace aregion::opt
