/**
 * @file
 * Liveness-based dead code elimination.
 *
 * Only pure value producers and loads are removable. Asserts and
 * checks are essential side effects — the single piece of
 * region-awareness the paper says DCE needs ("Only dead code
 * elimination needs to be informed that these operations are
 * essential", Section 4) — and that is already encoded in
 * ir::hasSideEffect.
 */

#include "opt/pass.hh"

namespace aregion::opt {

using namespace aregion::ir;

namespace {

bool
removableIfDead(Op op)
{
    return isPureValue(op) || isLoad(op);
}

} // namespace

bool
deadCodeElim(Function &func)
{
    const auto rpo = func.reversePostOrder();
    const size_t nv = static_cast<size_t>(func.numVregs());
    const size_t words = (nv + 63) / 64;

    auto set_bit = [&](std::vector<uint64_t> &bs, Vreg v) {
        bs[static_cast<size_t>(v) / 64] |=
            1ull << (static_cast<size_t>(v) % 64);
    };
    auto clear_bit = [&](std::vector<uint64_t> &bs, Vreg v) {
        bs[static_cast<size_t>(v) / 64] &=
            ~(1ull << (static_cast<size_t>(v) % 64));
    };
    auto test_bit = [&](const std::vector<uint64_t> &bs, Vreg v) {
        return bs[static_cast<size_t>(v) / 64] >>
               (static_cast<size_t>(v) % 64) & 1;
    };

    // live-in per block; iterate backward over RPO until stable.
    std::vector<std::vector<uint64_t>> live_in(
        static_cast<size_t>(func.numBlocks()),
        std::vector<uint64_t>(words, 0));

    bool dirty = true;
    int rounds = 0;
    while (dirty && ++rounds < 64) {
        dirty = false;
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            const int b = *it;
            const Block &blk = func.block(b);
            std::vector<uint64_t> live(words, 0);
            for (int s : blk.succs) {
                const auto &succ_in = live_in[static_cast<size_t>(s)];
                for (size_t w = 0; w < words; ++w)
                    live[w] |= succ_in[w];
            }
            for (auto iit = blk.instrs.rbegin();
                 iit != blk.instrs.rend(); ++iit) {
                const Instr &in = *iit;
                if (in.dst != NO_VREG)
                    clear_bit(live, in.dst);
                for (Vreg s : in.srcs)
                    set_bit(live, s);
            }
            if (live != live_in[static_cast<size_t>(b)]) {
                live_in[static_cast<size_t>(b)] = std::move(live);
                dirty = true;
            }
        }
    }

    // Sweep: remove dead removable instructions (backward walk).
    bool changed = false;
    for (int b : rpo) {
        Block &blk = func.block(b);
        std::vector<uint64_t> live(words, 0);
        for (int s : blk.succs) {
            const auto &succ_in = live_in[static_cast<size_t>(s)];
            for (size_t w = 0; w < words; ++w)
                live[w] |= succ_in[w];
        }
        std::vector<Instr> kept;
        kept.reserve(blk.instrs.size());
        for (auto it = blk.instrs.rbegin(); it != blk.instrs.rend();
             ++it) {
            Instr &in = *it;
            const bool dead = in.dst != NO_VREG &&
                              !test_bit(live, in.dst) &&
                              removableIfDead(in.op);
            if (dead) {
                changed = true;
                continue;
            }
            if (in.dst != NO_VREG)
                clear_bit(live, in.dst);
            for (Vreg s : in.srcs)
                set_bit(live, s);
            kept.push_back(std::move(in));
        }
        std::reverse(kept.begin(), kept.end());
        blk.instrs = std::move(kept);
    }

    return changed;
}

} // namespace aregion::opt
