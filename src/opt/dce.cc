/**
 * @file
 * Dead code elimination by mark-and-sweep over def-use chains.
 *
 * Only pure value producers and loads are removable. Asserts and
 * checks are essential side effects — the single piece of
 * region-awareness the paper says DCE needs ("Only dead code
 * elimination needs to be informed that these operations are
 * essential", Section 4) — and that is already encoded in
 * ir::hasSideEffect.
 *
 * The sweep marks names transitively reachable from essential
 * instructions (side effects, checks, terminators) and deletes every
 * removable instruction whose destination stays unmarked. In SSA
 * form this is exact and, unlike the liveness formulation it
 * replaced, also removes dead phi cycles — a loop-carried value
 * chain nothing essential consumes keeps itself "live" under a
 * backward liveness fixpoint but is never marked here. On non-SSA
 * input the pass remains correct (a marked name keeps all of its
 * defs) but is conservative about partially dead names.
 */

#include "opt/pass.hh"

namespace aregion::opt {

using namespace aregion::ir;

namespace {

bool
removableIfDead(Op op)
{
    return isPureValue(op) || isLoad(op);
}

} // namespace

bool
deadCodeElim(Function &func)
{
    const auto rpo = func.reversePostOrder();
    const size_t nv = static_cast<size_t>(func.numVregs());

    // Defs of each name (multiple only in non-SSA input).
    std::vector<std::vector<const Instr *>> defs(nv);
    for (int b : rpo) {
        for (const Instr &in : func.block(b).instrs) {
            if (in.dst != NO_VREG)
                defs[static_cast<size_t>(in.dst)].push_back(&in);
        }
    }

    std::vector<uint8_t> marked(nv, 0);
    std::vector<Vreg> work;
    auto mark = [&](Vreg v) {
        if (v < 0 || static_cast<size_t>(v) >= nv)
            return;
        if (marked[static_cast<size_t>(v)])
            return;
        marked[static_cast<size_t>(v)] = 1;
        work.push_back(v);
    };

    for (int b : rpo) {
        for (const Instr &in : func.block(b).instrs) {
            if (removableIfDead(in.op))
                continue;   // kept only if its dst gets marked
            for (Vreg s : in.srcs)
                mark(s);
        }
    }
    while (!work.empty()) {
        const Vreg v = work.back();
        work.pop_back();
        for (const Instr *def : defs[static_cast<size_t>(v)]) {
            for (Vreg s : def->srcs)
                mark(s);
        }
    }

    bool changed = false;
    for (int b : rpo) {
        Block &blk = func.block(b);
        std::vector<Instr> kept;
        kept.reserve(blk.instrs.size());
        for (Instr &in : blk.instrs) {
            const bool dead = in.dst != NO_VREG &&
                              removableIfDead(in.op) &&
                              !marked[static_cast<size_t>(in.dst)];
            if (dead) {
                changed = true;
                continue;
            }
            kept.push_back(std::move(in));
        }
        blk.instrs = std::move(kept);
    }

    return changed;
}

} // namespace aregion::opt
