#include "opt/pass.hh"

#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"

namespace aregion::opt {

namespace {

/** Cumulative wall-clock slots for the `jit.pass.*_us` keys,
 *  resolved once (registry references are stable). */
struct PassTimers
{
    std::atomic<uint64_t> &simplifyCfg;
    std::atomic<uint64_t> &constantFold;
    std::atomic<uint64_t> &cse;
    std::atomic<uint64_t> &copyProp;
    std::atomic<uint64_t> &dce;
    std::atomic<uint64_t> &inl;
    std::atomic<uint64_t> &unroll;

    static PassTimers &get()
    {
        namespace keys = telemetry::keys;
        auto &reg = telemetry::Registry::global();
        static PassTimers timers{
            reg.counter(keys::kJitPassSimplifyCfgUs),
            reg.counter(keys::kJitPassConstantFoldUs),
            reg.counter(keys::kJitPassCseUs),
            reg.counter(keys::kJitPassCopyPropUs),
            reg.counter(keys::kJitPassDceUs),
            reg.counter(keys::kJitPassInlineUs),
            reg.counter(keys::kJitPassUnrollUs),
        };
        return timers;
    }
};

bool
timed(std::atomic<uint64_t> &slot, bool (*pass)(ir::Function &),
      ir::Function &func)
{
    telemetry::ScopedTimerUs timer(slot);
    return pass(func);
}

} // namespace

bool
runScalarPipeline(ir::Function &func, const OptContext &ctx)
{
    PassTimers &t = PassTimers::get();
    bool changed_any = false;
    for (int round = 0; round < ctx.maxScalarIters; ++round) {
        bool changed = false;
        changed |= timed(t.simplifyCfg, simplifyCfg, func);
        changed |= timed(t.constantFold, constantFold, func);
        changed |= timed(t.cse, commonSubexpressionElim, func);
        changed |= timed(t.copyProp, copyPropagate, func);
        changed |= timed(t.dce, deadCodeElim, func);
        changed_any |= changed;
        if (!changed)
            break;
    }
    return changed_any;
}

void
optimizeModule(ir::Module &mod, const OptContext &ctx)
{
    PassTimers &t = PassTimers::get();
    telemetry::ScopedSpan span("opt.module");
    // Inline/devirtualize to a fixpoint, cleaning between sweeps so
    // size estimates see optimized callees.
    for (int round = 0; round < 4; ++round) {
        bool inlined = false;
        {
            telemetry::ScopedTimerUs timer(t.inl);
            inlined = inlineCalls(mod, ctx);
        }
        for (auto &[mid, func] : mod.funcs)
            runScalarPipeline(func, ctx);
        if (!inlined)
            break;
    }
    for (auto &[mid, func] : mod.funcs) {
        bool unrolled = false;
        {
            telemetry::ScopedTimerUs timer(t.unroll);
            unrolled = unrollLoops(func, ctx);
        }
        if (unrolled)
            runScalarPipeline(func, ctx);
    }
}

std::vector<std::string>
pipelinePassNames()
{
    return {"simplify-cfg", "constant-fold", "cse", "copy-prop",
            "dce", "inline+devirt", "unroll"};
}

} // namespace aregion::opt
