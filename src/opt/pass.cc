#include "opt/pass.hh"

#include <cstdlib>

#include "ir/ssa.hh"
#include "ir/verifier.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"

namespace aregion::opt {

namespace {

/** Cumulative wall-clock slots for the `jit.pass.*_us` keys,
 *  resolved once (registry references are stable). */
struct PassTimers
{
    std::atomic<uint64_t> &ssa;
    std::atomic<uint64_t> &simplifyCfg;
    std::atomic<uint64_t> &sccp;
    std::atomic<uint64_t> &gvn;
    std::atomic<uint64_t> &dce;
    std::atomic<uint64_t> &inl;
    std::atomic<uint64_t> &unroll;

    static PassTimers &get()
    {
        namespace keys = telemetry::keys;
        auto &reg = telemetry::Registry::global();
        static PassTimers timers{
            reg.counter(keys::kJitPassSsaUs),
            reg.counter(keys::kJitPassSimplifyCfgUs),
            reg.counter(keys::kJitPassSccpUs),
            reg.counter(keys::kJitPassGvnUs),
            reg.counter(keys::kJitPassDceUs),
            reg.counter(keys::kJitPassInlineUs),
            reg.counter(keys::kJitPassUnrollUs),
        };
        return timers;
    }
};

/** AREGION_VERIFY_PASSES=1 runs the IR verifier after every pass
 *  (names the offending pass on failure). */
bool
verifyBetweenPasses()
{
    static const bool on = [] {
        const char *env = std::getenv("AREGION_VERIFY_PASSES");
        return env != nullptr && env[0] != '\0' && env[0] != '0';
    }();
    return on;
}

void
checkAfter(const char *passName, const ir::Function &func)
{
    if (!verifyBetweenPasses())
        return;
    const auto problems = ir::verify(func);
    if (!problems.empty()) {
        AREGION_PANIC("IR verifier after ", passName, ": ",
                      problems.front(), " (", problems.size(),
                      " problems total)");
    }
}

bool
timed(std::atomic<uint64_t> &slot, const char *passName,
      bool (*pass)(ir::Function &), ir::Function &func)
{
    bool changed;
    {
        telemetry::ScopedTimerUs timer(slot);
        changed = pass(func);
    }
    checkAfter(passName, func);
    return changed;
}

} // namespace

bool
runScalarPipeline(ir::Function &func, const OptContext &ctx)
{
    PassTimers &t = PassTimers::get();

    // Structural passes (inlining, unrolling) hand us conventional
    // form; reruns from the same optimizeModule sweep may already be
    // in SSA. Either way, leave in the form we were given.
    const bool wasSsa = func.ssaForm;
    if (!wasSsa) {
        telemetry::ScopedTimerUs timer(t.ssa);
        ir::buildSSA(func);
        checkAfter("ssa-build", func);
    }

    bool changed_any = false;
    for (int round = 0; round < ctx.maxScalarIters; ++round) {
        bool changed = false;
        changed |= timed(t.simplifyCfg, "simplify-cfg", simplifyCfg,
                         func);
        changed |= timed(t.sccp, "sccp", sccp, func);
        changed |= timed(t.gvn, "gvn", gvn, func);
        changed |= timed(t.dce, "dce", deadCodeElim, func);
        changed_any |= changed;
        if (!changed)
            break;
    }

    if (!wasSsa) {
        telemetry::ScopedTimerUs timer(t.ssa);
        ir::destroySSA(func);
        checkAfter("ssa-destroy", func);
    }
    return changed_any;
}

void
optimizeModule(ir::Module &mod, const OptContext &ctx)
{
    PassTimers &t = PassTimers::get();
    telemetry::ScopedSpan span("opt.module");
    // Inline/devirtualize to a fixpoint, cleaning between sweeps so
    // size estimates see optimized callees. Only the first sweep
    // cleans every function (translate output is raw); later sweeps
    // revisit just the callers the inliner touched — everything else
    // is already at the scalar fixpoint, and re-running the pipeline
    // there is the kind of redundant compile time the telemetry
    // counters exist to expose.
    for (int round = 0; round < 4; ++round) {
        bool inlined = false;
        std::vector<vm::MethodId> touched;
        {
            telemetry::ScopedTimerUs timer(t.inl);
            inlined = inlineCalls(mod, ctx, &touched);
        }
        if (round == 0) {
            for (auto &[mid, func] : mod.funcs)
                runScalarPipeline(func, ctx);
        } else {
            for (vm::MethodId mid : touched)
                runScalarPipeline(mod.funcs.at(mid), ctx);
        }
        if (!inlined)
            break;
    }
    for (auto &[mid, func] : mod.funcs) {
        bool unrolled = false;
        {
            telemetry::ScopedTimerUs timer(t.unroll);
            unrolled = unrollLoops(func, ctx);
        }
        if (unrolled)
            runScalarPipeline(func, ctx);
    }
}

std::vector<std::string>
pipelinePassNames()
{
    return {"ssa-build", "simplify-cfg", "sccp", "gvn", "dce",
            "ssa-destroy", "inline+devirt", "unroll"};
}

} // namespace aregion::opt
