#include "opt/pass.hh"

namespace aregion::opt {

bool
runScalarPipeline(ir::Function &func, const OptContext &ctx)
{
    bool changed_any = false;
    for (int round = 0; round < ctx.maxScalarIters; ++round) {
        bool changed = false;
        changed |= simplifyCfg(func);
        changed |= constantFold(func);
        changed |= commonSubexpressionElim(func);
        changed |= copyPropagate(func);
        changed |= deadCodeElim(func);
        changed_any |= changed;
        if (!changed)
            break;
    }
    return changed_any;
}

void
optimizeModule(ir::Module &mod, const OptContext &ctx)
{
    // Inline/devirtualize to a fixpoint, cleaning between sweeps so
    // size estimates see optimized callees.
    for (int round = 0; round < 4; ++round) {
        const bool inlined = inlineCalls(mod, ctx);
        for (auto &[mid, func] : mod.funcs)
            runScalarPipeline(func, ctx);
        if (!inlined)
            break;
    }
    for (auto &[mid, func] : mod.funcs) {
        if (unrollLoops(func, ctx))
            runScalarPipeline(func, ctx);
    }
}

std::vector<std::string>
pipelinePassNames()
{
    return {"simplify-cfg", "constant-fold", "cse", "copy-prop",
            "dce", "inline+devirt", "unroll"};
}

} // namespace aregion::opt
