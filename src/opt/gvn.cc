/**
 * @file
 * Sparse global value numbering over SSA form.
 *
 * This is the successor of the available-expression CSE pass and
 * keeps its decision procedure: an occurrence is redundant only if
 * the same expression was computed on EVERY path reaching it with no
 * intervening kill (meet = intersection). That property is the
 * paper's lever — cold join edges block the optimization in baseline
 * code, and replacing them with Asserts (no control-flow join) lets
 * this very pass perform the speculative optimizations.
 *
 * What changed is the cost model. The old pass re-simulated every
 * predecessor block instruction-by-instruction for every dataflow
 * query, which is quadratic in block size and was the dominant
 * compile-time term on the bench workloads. Here expressions are
 * hash-consed into dense ids once, each block's GEN/KILL bitvectors
 * are precomputed in one scan, and the fixpoint iterates pure
 * bitvector transfer functions. Redundant occurrences are then
 * rewritten in a single forward walk: SSA names make register kills
 * impossible, and instead of the old "home temp" convention (compute
 * into a shared temp in every arm, copy out) the walk materialises
 * the reaching value directly, inserting a phi at joins whose arms
 * provide it under different names. destroySSA's coalescer folds
 * those phis back into the home-temp shape when registers allow.
 *
 * Kill classes are unchanged and encode the isolation guarantee:
 * stores kill field/element/slot-matching loads (with store-to-load
 * forwarding), calls and region boundaries kill all loads, monitor
 * operations inside a region kill only the lock word, safepoints
 * kill loads only outside regions, allocations kill nothing.
 */

#include "opt/pass.hh"

#include <algorithm>
#include <array>
#include <map>
#include <unordered_map>

#include "support/bitset.hh"
#include "support/logging.hh"
#include "vm/layout.hh"

namespace aregion::opt {

using namespace aregion::ir;
using support::DenseBitset;

namespace {

/** Canonical key identifying a syntactic expression. Sources are
 *  stored inline: every numbered op is unary or binary (the widest
 *  are binary arithmetic, LoadElem and BoundsCheck), so keys never
 *  touch the heap. */
struct ExprKey
{
    Op op = Op::Const;
    uint8_t nsrcs = 0;
    int aux = 0;
    int64_t imm = 0;
    std::array<Vreg, 2> srcs{};
};

/** Non-owning view of an ExprKey. Lookups happen once per
 *  instruction per episode, so the view keeps the hit path
 *  allocation-free: the owning key is only materialised when an
 *  expression enters the universe. */
struct ExprRef
{
    Op op = Op::Const;
    const Vreg *srcs = nullptr;
    size_t nsrcs = 0;
    int64_t imm = 0;
    int aux = 0;
};

struct ExprKeyHash
{
    using is_transparent = void;

    static size_t
    hash(Op op, const Vreg *srcs, size_t nsrcs, int64_t imm, int aux)
    {
        uint64_t h = 1469598103934665603ull;    // FNV-1a
        auto mix = [&](uint64_t v) {
            h ^= v;
            h *= 1099511628211ull;
        };
        mix(static_cast<uint64_t>(op));
        mix(static_cast<uint64_t>(imm));
        mix(static_cast<uint64_t>(aux));
        for (size_t i = 0; i < nsrcs; ++i)
            mix(static_cast<uint64_t>(srcs[i]));
        return static_cast<size_t>(h);
    }

    size_t
    operator()(const ExprKey &k) const
    {
        return hash(k.op, k.srcs.data(), k.nsrcs, k.imm, k.aux);
    }

    size_t
    operator()(const ExprRef &r) const
    {
        return hash(r.op, r.srcs, r.nsrcs, r.imm, r.aux);
    }
};

struct ExprKeyEq
{
    using is_transparent = void;

    static bool
    eq(const ExprKey &k, Op op, const Vreg *srcs, size_t nsrcs,
       int64_t imm, int aux)
    {
        return k.op == op && k.imm == imm && k.aux == aux &&
               k.nsrcs == nsrcs &&
               std::equal(k.srcs.data(), k.srcs.data() + k.nsrcs,
                          srcs);
    }

    bool
    operator()(const ExprKey &a, const ExprKey &b) const
    {
        return eq(a, b.op, b.srcs.data(), b.nsrcs, b.imm, b.aux);
    }

    bool
    operator()(const ExprKey &k, const ExprRef &r) const
    {
        return eq(k, r.op, r.srcs, r.nsrcs, r.imm, r.aux);
    }

    bool
    operator()(const ExprRef &r, const ExprKey &k) const
    {
        return eq(k, r.op, r.srcs, r.nsrcs, r.imm, r.aux);
    }
};

bool
isCommutative(Op op)
{
    switch (op) {
      case Op::Add: case Op::Mul: case Op::And: case Op::Or:
      case Op::Xor: case Op::CmpEq: case Op::CmpNe:
        return true;
      default:
        return false;
    }
}

/** Is this op an expression we number? */
bool
isExpr(Op op)
{
    if (isPureValue(op) && op != Op::Const && op != Op::Mov &&
        op != Op::Phi) {
        return true;
    }
    if (isLoad(op))
        return true;
    if (isCheck(op))
        return true;
    return op == Op::Assert;
}

/** View of `in`'s canonical key. `swapped` is caller-provided
 *  storage for the commutative-operand normalization (the view may
 *  alias it, so it must outlive the returned ref). */
ExprRef
refOf(const Instr &in, Vreg (&swapped)[2])
{
    ExprRef ref;
    ref.op = in.op;
    ref.srcs = in.srcs.data();
    ref.nsrcs = in.srcs.size();
    switch (in.op) {
      case Op::LoadField:
      case Op::LoadSubtype:
        ref.aux = in.aux;
        break;
      case Op::LoadRaw:
        ref.imm = in.imm;
        break;
      case Op::Assert:
        // Asserts with the same condition and polarity are
        // interchangeable even when their abort ids differ.
        ref.imm = in.imm;
        break;
      default:
        break;
    }
    if (isCommutative(in.op) && ref.nsrcs == 2 &&
        ref.srcs[0] > ref.srcs[1]) {
        swapped[0] = ref.srcs[1];
        swapped[1] = ref.srcs[0];
        ref.srcs = swapped;
    }
    return ref;
}

/** Hash-consed expression universe with per-kill-class id lists. */
struct Universe
{
    std::unordered_map<ExprKey, int, ExprKeyHash, ExprKeyEq> index;
    std::vector<ExprKey> exprs;
    std::map<int, std::vector<int>> loadFieldByAux;
    std::vector<int> loadElem;
    std::map<int64_t, std::vector<int>> loadRawByImm;
    std::vector<int> allLoads;      // excludes LoadSubtype

    int
    intern(const ExprRef &ref)
    {
        auto it = index.find(ref);
        if (it != index.end())
            return it->second;
        AREGION_ASSERT(ref.nsrcs <= 2,
                       "numbered expressions are at most binary");
        ExprKey key;
        key.op = ref.op;
        key.nsrcs = static_cast<uint8_t>(ref.nsrcs);
        for (size_t i = 0; i < ref.nsrcs; ++i)
            key.srcs[i] = ref.srcs[i];
        key.imm = ref.imm;
        key.aux = ref.aux;
        const int id = static_cast<int>(exprs.size());
        exprs.push_back(key);
        switch (key.op) {
          case Op::LoadField:
            loadFieldByAux[key.aux].push_back(id);
            allLoads.push_back(id);
            break;
          case Op::LoadElem:
            loadElem.push_back(id);
            allLoads.push_back(id);
            break;
          case Op::LoadRaw:
            loadRawByImm[key.imm].push_back(id);
            allLoads.push_back(id);
            break;
          default:
            break;
        }
        index.emplace(std::move(key), id);
        return id;
    }

    int
    idOf(const Instr &in)
    {
        Vreg swapped[2];
        return intern(refOf(in, swapped));
    }
};

/**
 * Expression ids killed by the side effects of one instruction.
 * "Kills every load" is the common and potentially huge case (calls,
 * region boundaries), so it is reported through `kills_all_loads`
 * rather than materialised — callers apply a precomputed load-id
 * bitmask instead of walking an id list per call site.
 */
void
memoryKills(const Instr &in, bool in_region, const Universe &uni,
            std::vector<int> &out, bool &kills_all_loads)
{
    out.clear();
    kills_all_loads = false;
    auto addAll = [&](const std::vector<int> &ids) {
        out.insert(out.end(), ids.begin(), ids.end());
    };
    switch (in.op) {
      case Op::StoreField: {
        auto it = uni.loadFieldByAux.find(in.aux);
        if (it != uni.loadFieldByAux.end())
            addAll(it->second);
        break;
      }
      case Op::StoreElem:
        addAll(uni.loadElem);
        break;
      case Op::StoreRaw: {
        auto it = uni.loadRawByImm.find(in.imm);
        if (it != uni.loadRawByImm.end())
            addAll(it->second);
        break;
      }
      case Op::CallStatic:
      case Op::CallVirtual:
      case Op::Spawn:
      case Op::AtomicBegin:
      case Op::AtomicEnd:
        kills_all_loads = true;
        break;
      case Op::MonitorEnter:
      case Op::MonitorExit:
        if (in_region) {
            // Isolation: within a region only the lock word itself
            // is written.
            auto it = uni.loadRawByImm.find(vm::layout::HDR_LOCK);
            if (it != uni.loadRawByImm.end())
                addAll(it->second);
        } else {
            kills_all_loads = true;
        }
        break;
      case Op::Safepoint:
        if (!in_region)
            kills_all_loads = true;
        break;
      case Op::NewObject:
      case Op::NewArray:
        // Fresh memory: existing loads unaffected.
        break;
      default:
        break;
    }
}

/** Store-to-load forwarding: the load expression this store makes
 *  available (value held in a source vreg), or -1. */
int
forwardedExpr(const Instr &in, Universe &uni, Vreg &value_out)
{
    Vreg buf[2];
    ExprRef ref;
    ref.srcs = buf;
    switch (in.op) {
      case Op::StoreField:
        ref.op = Op::LoadField;
        buf[0] = in.s0();
        ref.nsrcs = 1;
        ref.aux = in.aux;
        value_out = in.s1();
        break;
      case Op::StoreElem:
        ref.op = Op::LoadElem;
        buf[0] = in.s0();
        buf[1] = in.s1();
        ref.nsrcs = 2;
        value_out = in.s2();
        break;
      case Op::StoreRaw:
        ref.op = Op::LoadRaw;
        buf[0] = in.s0();
        ref.nsrcs = 1;
        ref.imm = in.imm;
        value_out = in.s1();
        break;
      default:
        return -1;
    }
    return uni.intern(ref);
}

/** One numbering/rewriting episode over a function. */
struct Gvn
{
    Function &func;
    Universe uni;
    std::vector<int> rpo;
    std::vector<std::vector<int>> preds;
    std::vector<uint8_t> reachable;
    size_t n = 0;                       // expression universe size

    std::vector<DenseBitset> genEnd;    // generated & live at block end
    std::vector<DenseBitset> killAny;   // killed at any point in block
    std::vector<DenseBitset> availIn;
    std::vector<DenseBitset> availOut;  // maintained with availIn
    /** Interned ids aligned with instruction order, flat across the
     *  function (instruction i of block b lives at blockBase[b]+i),
     *  so the universe map is consulted once per instruction: the
     *  expression id (-1 if not numbered) and the store-forwarded
     *  load id (-1) with its value vreg. */
    std::vector<int> blockBase;
    std::vector<int> exprIds;
    std::vector<int> fwdIds;
    std::vector<Vreg> fwdVals;
    /** Kill lists recorded once by computeLocal and replayed by
     *  rewrite: killOff[g]..killOff[g+1] indexes killDat for the
     *  instruction at flat index g (contiguous because both walks
     *  visit blocks in the same RPO). A -1 entry is the "kills every
     *  load" sentinel, applied with `loadsMask` instead of a list. */
    std::vector<int> killOff;
    std::vector<int> killDat;
    DenseBitset loadsMask;              // every load id (no LoadSubtype)
    std::vector<uint8_t> isLoadId;      // indexed by expression id
    /** Last provider name per (block, expr) still valid at block
     *  end; parallel to genEnd. */
    std::vector<std::unordered_map<int, Vreg>> provEnd;
    /** Memoized provider valid at block entry. */
    std::map<std::pair<int, int>, Vreg> provInMemo;
    /** Phis synthesized for join providers, prepended at the end. */
    std::vector<std::vector<Instr>> pendingPhis;
    /** dst of a deleted occurrence -> the name that replaced it. */
    std::vector<Vreg> replacedBy;

    explicit Gvn(Function &f) : func(f) {}

    bool run();
    void computeLocal();
    void solveAvail();
    bool rewrite();
    Vreg providerIn(int b, int e);
    Vreg providerOut(int p, int e);
};

void
Gvn::computeLocal()
{
    const auto nb = static_cast<size_t>(func.numBlocks());
    genEnd.assign(nb, DenseBitset(n));
    killAny.assign(nb, DenseBitset(n));
    provEnd.assign(nb, {});
    killOff.clear();
    killOff.reserve(exprIds.size() + 1);
    killOff.push_back(0);
    killDat.clear();
    std::vector<int> kills;
    for (int b : rpo) {
        Block &blk = func.block(b);
        const bool in_region = blk.regionId >= 0;
        DenseBitset &gen = genEnd[static_cast<size_t>(b)];
        DenseBitset &kill = killAny[static_cast<size_t>(b)];
        auto &prov = provEnd[static_cast<size_t>(b)];
        const auto base =
            static_cast<size_t>(blockBase[static_cast<size_t>(b)]);
        for (size_t i = 0; i < blk.instrs.size(); ++i) {
            const Instr &in = blk.instrs[i];
            const int e = exprIds[base + i];
            if (e >= 0) {
                gen.set(static_cast<size_t>(e));
                kill.clear(static_cast<size_t>(e));
                if (in.dst != NO_VREG)
                    prov[e] = in.dst;
            }
            bool kills_all = false;
            memoryKills(in, in_region, uni, kills, kills_all);
            if (kills_all) {
                kill.unite(loadsMask);
                gen.subtract(loadsMask);
                for (auto it = prov.begin(); it != prov.end();) {
                    if (isLoadId[static_cast<size_t>(it->first)])
                        it = prov.erase(it);
                    else
                        ++it;
                }
                killDat.push_back(-1);
            } else {
                for (int k : kills) {
                    kill.set(static_cast<size_t>(k));
                    gen.clear(static_cast<size_t>(k));
                    prov.erase(k);
                }
                killDat.insert(killDat.end(), kills.begin(),
                               kills.end());
            }
            killOff.push_back(static_cast<int>(killDat.size()));
            const int f = fwdIds[base + i];
            if (f >= 0) {
                gen.set(static_cast<size_t>(f));
                kill.clear(static_cast<size_t>(f));
                prov[f] = fwdVals[base + i];
            }
        }
    }
}

void
Gvn::solveAvail()
{
    const auto nb = static_cast<size_t>(func.numBlocks());
    availIn.assign(nb, DenseBitset(n));
    availOut.assign(nb, DenseBitset(n));
    // Out-sets are maintained alongside in-sets so the fixpoint loop
    // never recomputes (or reallocates) a predecessor's transfer.
    auto flowOut = [&](int b) {
        DenseBitset &out = availOut[static_cast<size_t>(b)];
        out = availIn[static_cast<size_t>(b)];
        out.subtract(killAny[static_cast<size_t>(b)]);
        out.unite(genEnd[static_cast<size_t>(b)]);
    };
    for (int b : rpo) {
        if (b != func.entry)
            availIn[static_cast<size_t>(b)].setAll();
        flowOut(b);
    }
    DenseBitset merged(n);
    bool dirty = true;
    while (dirty) {
        dirty = false;
        for (int b : rpo) {
            if (b == func.entry)
                continue;
            merged.setAll();
            bool any = false;
            for (int p : preds[static_cast<size_t>(b)]) {
                if (!reachable[static_cast<size_t>(p)])
                    continue;
                merged.intersect(availOut[static_cast<size_t>(p)]);
                any = true;
            }
            if (!any)
                merged.reset();
            if (!(merged == availIn[static_cast<size_t>(b)])) {
                availIn[static_cast<size_t>(b)] = merged;
                flowOut(b);
                dirty = true;
            }
        }
    }
}

/** Name holding expression e at the end of block p. */
Vreg
Gvn::providerOut(int p, int e)
{
    const auto it = provEnd[static_cast<size_t>(p)].find(e);
    if (it != provEnd[static_cast<size_t>(p)].end())
        return it->second;
    return providerIn(p, e);
}

/** Name holding expression e at the entry of block b; inserts a phi
 *  when the predecessors provide it under different names. */
Vreg
Gvn::providerIn(int b, int e)
{
    const auto memo = provInMemo.find({b, e});
    if (memo != provInMemo.end())
        return memo->second;

    std::vector<int> edges;     // reachable pred edges, multiplicity
    for (int p : preds[static_cast<size_t>(b)]) {
        if (reachable[static_cast<size_t>(p)])
            edges.push_back(p);
    }
    AREGION_ASSERT(!edges.empty(),
                   "gvn provider requested at the entry block");
    bool single = true;
    for (int p : edges)
        single &= p == edges.front();
    if (single) {
        const Vreg v = providerOut(edges.front(), e);
        provInMemo[{b, e}] = v;
        return v;
    }
    // Join: materialise a phi. Memoize its name first so a cycle
    // through a loop back edge resolves to the phi itself.
    const Vreg dst = func.newVreg();
    provInMemo[{b, e}] = dst;
    Instr phi;
    phi.op = Op::Phi;
    phi.dst = dst;
    for (int p : edges) {
        phi.srcs.push_back(providerOut(p, e));
        phi.phiBlocks.push_back(p);
    }
    pendingPhis[static_cast<size_t>(b)].push_back(std::move(phi));
    return dst;
}

bool
Gvn::rewrite()
{
    bool changed = false;
    for (int b : rpo) {
        Block &blk = func.block(b);
        DenseBitset avail = availIn[static_cast<size_t>(b)];
        std::map<int, Vreg> local;  // providers established in-block
        const auto base =
            static_cast<size_t>(blockBase[static_cast<size_t>(b)]);
        std::vector<Instr> out;
        out.reserve(blk.instrs.size());
        for (size_t i = 0; i < blk.instrs.size(); ++i) {
            Instr &in = blk.instrs[i];
            if (exprIds[base + i] >= 0) {
                const int e = exprIds[base + i];
                if (avail.test(static_cast<size_t>(e))) {
                    changed = true;
                    if (in.dst != NO_VREG) {
                        const auto it = local.find(e);
                        const Vreg prov = it != local.end()
                                              ? it->second
                                              : providerIn(b, e);
                        replacedBy[static_cast<size_t>(in.dst)] =
                            prov;
                        // Keep the provider for later occurrences.
                        local[e] = prov;
                    }
                    continue;   // redundant check/assert/value
                }
                avail.set(static_cast<size_t>(e));
                if (in.dst != NO_VREG)
                    local[e] = in.dst;
            }
            for (int j = killOff[base + i]; j < killOff[base + i + 1];
                 ++j) {
                const int k = killDat[static_cast<size_t>(j)];
                if (k < 0) {    // kills-every-load sentinel
                    avail.subtract(loadsMask);
                    for (auto it = local.begin(); it != local.end();) {
                        if (isLoadId[static_cast<size_t>(it->first)])
                            it = local.erase(it);
                        else
                            ++it;
                    }
                    continue;
                }
                avail.clear(static_cast<size_t>(k));
                local.erase(k);
            }
            const int f = fwdIds[base + i];
            if (f >= 0) {
                avail.set(static_cast<size_t>(f));
                local[f] = fwdVals[base + i];
            }
            out.push_back(std::move(in));
        }
        blk.instrs = std::move(out);
    }
    return changed;
}

bool
Gvn::run()
{
    rpo = func.reversePostOrder();
    preds = func.computePreds();
    reachable.assign(static_cast<size_t>(func.numBlocks()), 0);
    for (int b : rpo)
        reachable[static_cast<size_t>(b)] = 1;

    blockBase.assign(static_cast<size_t>(func.numBlocks()), 0);
    size_t total_instrs = 0;
    for (int b : rpo) {
        blockBase[static_cast<size_t>(b)] =
            static_cast<int>(total_instrs);
        total_instrs += func.block(b).instrs.size();
    }
    uni.index.reserve(total_instrs);
    uni.exprs.reserve(total_instrs);
    exprIds.resize(total_instrs);
    fwdIds.resize(total_instrs);
    fwdVals.resize(total_instrs);
    for (int b : rpo) {
        const Block &blk = func.block(b);
        size_t g = static_cast<size_t>(blockBase[static_cast<size_t>(b)]);
        for (const Instr &in : blk.instrs) {
            exprIds[g] = isExpr(in.op) ? uni.idOf(in) : -1;
            Vreg fwd_value = NO_VREG;
            fwdIds[g] = forwardedExpr(in, uni, fwd_value);
            fwdVals[g] = fwd_value;
            ++g;
        }
    }
    n = uni.exprs.size();
    if (n == 0)
        return false;

    loadsMask = DenseBitset(n);
    isLoadId.assign(n, 0);
    for (int id : uni.allLoads) {
        loadsMask.set(static_cast<size_t>(id));
        isLoadId[static_cast<size_t>(id)] = 1;
    }

    pendingPhis.assign(static_cast<size_t>(func.numBlocks()), {});
    replacedBy.assign(static_cast<size_t>(func.numVregs()), NO_VREG);

    computeLocal();
    solveAvail();
    if (!rewrite())
        return false;

    // Splice in the provider phis, then route every operand through
    // the replacement map (a deleted occurrence's name may feed
    // other deleted occurrences, so chase chains). Back-edge phi
    // inputs are only fixed up here, which is why this runs after
    // the whole walk.
    for (int b : rpo) {
        auto &pend = pendingPhis[static_cast<size_t>(b)];
        if (pend.empty())
            continue;
        Block &blk = func.block(b);
        blk.instrs.insert(blk.instrs.begin(),
                          std::make_move_iterator(pend.begin()),
                          std::make_move_iterator(pend.end()));
    }
    auto resolve = [&](Vreg v) {
        while (v < static_cast<Vreg>(replacedBy.size()) &&
               replacedBy[static_cast<size_t>(v)] != NO_VREG) {
            v = replacedBy[static_cast<size_t>(v)];
        }
        return v;
    };
    for (int b : rpo) {
        for (Instr &in : func.block(b).instrs) {
            for (Vreg &s : in.srcs)
                s = resolve(s);
        }
    }
    return true;
}

} // namespace

bool
gvn(Function &func)
{
    AREGION_ASSERT(func.ssaForm, "gvn requires SSA form");
    Gvn pass(func);
    return pass.run();
}

} // namespace aregion::opt
