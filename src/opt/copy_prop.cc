/**
 * @file
 * Global copy propagation over available copies (meet = intersect).
 * Cleans up the Mov chains that CSE and inlining introduce so DCE can
 * delete the copies themselves.
 */

#include "opt/pass.hh"

#include <map>
#include <set>

namespace aregion::opt {

using namespace aregion::ir;

namespace {

using CopyPair = std::pair<Vreg, Vreg>;    // dst <- src

/** Per-block copy state: dst -> src for active copies. */
using CopyMap = std::map<Vreg, Vreg>;

/** Remove every pair mentioning v (as dst or src). */
void
killVreg(CopyMap &state, Vreg v)
{
    state.erase(v);
    for (auto it = state.begin(); it != state.end();) {
        if (it->second == v)
            it = state.erase(it);
        else
            ++it;
    }
}

void
transfer(const Instr &in, CopyMap &state)
{
    if (in.dst == NO_VREG)
        return;
    if (in.op == Op::Mov && in.s0() != in.dst) {
        const Vreg src = in.s0();
        killVreg(state, in.dst);
        state[in.dst] = src;
    } else {
        killVreg(state, in.dst);
    }
}

CopyMap
meet(const CopyMap &a, const CopyMap &b)
{
    CopyMap out;
    for (const auto &[dst, src] : a) {
        auto it = b.find(dst);
        if (it != b.end() && it->second == src)
            out.emplace(dst, src);
    }
    return out;
}

} // namespace

bool
copyPropagate(Function &func)
{
    const auto rpo = func.reversePostOrder();
    const auto preds = func.computePreds();
    std::vector<uint8_t> reachable(
        static_cast<size_t>(func.numBlocks()), 0);
    for (int b : rpo)
        reachable[static_cast<size_t>(b)] = 1;

    // IN maps per block; std::optional-like via a "visited" flag.
    std::vector<CopyMap> in_maps(static_cast<size_t>(func.numBlocks()));
    std::vector<uint8_t> visited(
        static_cast<size_t>(func.numBlocks()), 0);
    visited[static_cast<size_t>(func.entry)] = 1;

    bool dirty = true;
    int rounds = 0;
    while (dirty && ++rounds < 32) {
        dirty = false;
        for (int b : rpo) {
            if (b == func.entry)
                continue;
            CopyMap merged;
            bool first = true;
            bool any = false;
            for (int p : preds[static_cast<size_t>(b)]) {
                if (!reachable[static_cast<size_t>(p)] ||
                    !visited[static_cast<size_t>(p)]) {
                    continue;
                }
                CopyMap out = in_maps[static_cast<size_t>(p)];
                for (const Instr &in : func.block(p).instrs)
                    transfer(in, out);
                if (first) {
                    merged = std::move(out);
                    first = false;
                } else {
                    merged = meet(merged, out);
                }
                any = true;
            }
            if (!any)
                continue;
            if (!visited[static_cast<size_t>(b)] ||
                merged != in_maps[static_cast<size_t>(b)]) {
                in_maps[static_cast<size_t>(b)] = std::move(merged);
                visited[static_cast<size_t>(b)] = 1;
                dirty = true;
            }
        }
    }

    // Rewrite uses; follow copy chains a bounded number of steps.
    bool changed = false;
    for (int b : rpo) {
        if (!visited[static_cast<size_t>(b)])
            continue;
        Block &blk = func.block(b);
        CopyMap state = in_maps[static_cast<size_t>(b)];
        std::vector<Instr> out;
        out.reserve(blk.instrs.size());
        for (Instr &in : blk.instrs) {
            for (Vreg &src : in.srcs) {
                int hops = 0;
                while (hops++ < 4) {
                    auto it = state.find(src);
                    if (it == state.end())
                        break;
                    src = it->second;
                    changed = true;
                }
            }
            transfer(in, state);
            if (in.op == Op::Mov && in.dst == in.s0()) {
                changed = true;     // self-move: drop
                continue;
            }
            out.push_back(std::move(in));
        }
        blk.instrs = std::move(out);
    }

    return changed;
}

} // namespace aregion::opt
