#include "opt/pass.hh"

#include "ir/cfg.hh"

namespace aregion::opt {

using namespace aregion::ir;

namespace {

bool
isRegionEntry(const Block &blk)
{
    return !blk.instrs.empty() &&
           blk.instrs.front().op == Op::AtomicBegin;
}

/** A block containing only a jump (threading candidate). */
bool
isTrivialJump(const Block &blk)
{
    return blk.instrs.size() == 1 && blk.terminator().op == Op::Jump &&
           blk.succs.size() == 1 && blk.succs[0] != blk.id;
}

/** Calls terminate blocks (region formation relies on it): a block
 *  whose penultimate instruction is a call must not absorb more
 *  instructions. */
bool
endsWithCall(const Block &blk)
{
    if (blk.instrs.size() < 2)
        return false;
    const Op op = blk.instrs[blk.instrs.size() - 2].op;
    return op == Op::CallStatic || op == Op::CallVirtual;
}

} // namespace

bool
simplifyCfg(Function &func)
{
    bool changed_any = false;
    bool changed = true;
    int guard = 0;
    while (changed && ++guard < 64) {
        changed = false;

        // Collapse branches whose arms agree.
        for (int b : func.reversePostOrder()) {
            Block &blk = func.block(b);
            if (blk.terminator().op == Op::Branch &&
                blk.succs.size() == 2 && blk.succs[0] == blk.succs[1]) {
                Instr jump;
                jump.op = Op::Jump;
                jump.bcPc = blk.terminator().bcPc;
                jump.bcMethod = blk.terminator().bcMethod;
                blk.instrs.back() = std::move(jump);
                blk.succs.pop_back();
                const double total =
                    blk.succCount.size() == 2
                        ? blk.succCount[0] + blk.succCount[1]
                        : blk.execCount;
                blk.succCount = {total};
                changed = true;
            }
        }

        // Thread edges through trivial jump blocks. Region entries
        // are skipped: their second successor is the abort exception
        // edge and must stay equal to RegionInfo::altBlock.
        for (int b : func.reversePostOrder()) {
            Block &blk = func.block(b);
            if (isRegionEntry(blk))
                continue;
            for (int &s : blk.succs) {
                int hops = 0;
                while (hops++ < 8) {
                    Block &target = func.block(s);
                    if (!isTrivialJump(target) || target.id == blk.id)
                        break;
                    s = target.succs[0];
                    changed = true;
                }
            }
        }
        if (isTrivialJump(func.block(func.entry)) &&
            !isRegionEntry(func.block(func.entry))) {
            func.entry = func.block(func.entry).succs[0];
            changed = true;
        }

        // Merge straight-line pairs b -> s where s has b as its only
        // predecessor. Region boundaries are kept intact.
        const auto preds = func.computePreds();
        for (int b : func.reversePostOrder()) {
            Block &blk = func.block(b);
            if (blk.succs.size() != 1 ||
                blk.terminator().op != Op::Jump) {
                continue;
            }
            const int s = blk.succs[0];
            if (s == b || s == func.entry)
                continue;
            Block &next = func.block(s);
            if (preds[static_cast<size_t>(s)].size() != 1)
                continue;
            if (isRegionEntry(blk) || isRegionEntry(next))
                continue;
            if (blk.regionId != next.regionId)
                continue;
            if (endsWithCall(blk))
                continue;
            // Keep synchronized-method epilogues (MonitorExit blocks)
            // separate from their Ret blocks: region formation stops
            // at Ret blocks but must replicate the epilogue so SLE
            // sees balanced monitor pairs.
            bool has_monitor_exit = false;
            for (const Instr &in : blk.instrs)
                has_monitor_exit |= in.op == Op::MonitorExit;
            if (has_monitor_exit && next.terminator().op == Op::Ret)
                continue;
            // Don't merge into a region alt block (reached by the
            // abort exception edge, which preds don't see).
            bool is_alt = false;
            for (const RegionInfo &r : func.regions)
                is_alt |= r.altBlock == s;
            if (is_alt)
                continue;

            blk.instrs.pop_back();      // drop the jump
            blk.instrs.insert(blk.instrs.end(), next.instrs.begin(),
                              next.instrs.end());
            blk.succs = next.succs;
            blk.succCount = next.succCount;
            next.instrs.clear();
            next.succs.clear();
            {
                Instr ret;
                ret.op = Op::Ret;
                next.instrs.push_back(std::move(ret)); // dead tombstone
            }
            changed = true;
            break;  // preds are stale; restart the sweep
        }

        changed_any |= changed;
    }

    if (changed_any)
        func.compact();
    return changed_any;
}

} // namespace aregion::opt
