/**
 * @file
 * CFG cleanup: collapse same-target branches, thread trivial jumps,
 * merge straight-line pairs, drop unreachable blocks.
 *
 * The pass runs both before SSA construction (on translate output)
 * and inside the SSA pipeline, so every edge edit keeps phi inputs
 * consistent: collapsing a duplicate edge removes its phi slot,
 * retargeting an edge through a trivial jump copies the threaded
 * value into a new slot for the new predecessor, and merging a
 * single-predecessor block lowers its (necessarily arity-1) phis to
 * copies. A block that carries phis is never itself a threading
 * candidate — a trivial jump is a single instruction by definition.
 */

#include "opt/pass.hh"

#include "ir/cfg.hh"

namespace aregion::opt {

using namespace aregion::ir;

namespace {

bool
isRegionEntry(const Block &blk)
{
    return isRegionEntryBlock(blk);
}

/** A block containing only a jump (threading candidate); a block
 *  with phis can never qualify. */
bool
isTrivialJump(const Block &blk)
{
    return blk.instrs.size() == 1 && blk.terminator().op == Op::Jump &&
           blk.succs.size() == 1 && blk.succs[0] != blk.id;
}

/** Calls terminate blocks (region formation relies on it): a block
 *  whose penultimate instruction is a call must not absorb more
 *  instructions. */
bool
endsWithCall(const Block &blk)
{
    if (blk.instrs.size() < 2)
        return false;
    const Op op = blk.instrs[blk.instrs.size() - 2].op;
    return op == Op::CallStatic || op == Op::CallVirtual;
}

bool
hasPhis(const Block &blk)
{
    return !blk.instrs.empty() && blk.instrs.front().op == Op::Phi;
}

/** Remove one phi slot for the edge pred -> blk. */
void
dropPhiSlot(Block &blk, int pred)
{
    for (Instr &in : blk.instrs) {
        if (in.op != Op::Phi)
            break;
        for (size_t k = 0; k < in.phiBlocks.size(); ++k) {
            if (in.phiBlocks[k] == pred) {
                in.phiBlocks.erase(in.phiBlocks.begin() +
                                   static_cast<long>(k));
                in.srcs.erase(in.srcs.begin() +
                              static_cast<long>(k));
                break;
            }
        }
    }
}

/** Phi slots distinguish edges only by predecessor id, so two edges
 *  from the same predecessor must carry identical values — otherwise
 *  the value would depend on which edge was taken, which the
 *  representation cannot express. Returns false if giving `newPred`
 *  a copy of `via`'s slots would break that. */
bool
threadKeepsPhisUnambiguous(const Block &blk, int via, int newPred)
{
    for (const Instr &in : blk.instrs) {
        if (in.op != Op::Phi)
            break;
        Vreg via_val = NO_VREG;
        for (size_t k = 0; k < in.phiBlocks.size(); ++k) {
            if (in.phiBlocks[k] == via)
                via_val = in.srcs[k];
        }
        for (size_t k = 0; k < in.phiBlocks.size(); ++k) {
            if (in.phiBlocks[k] == newPred && in.srcs[k] != via_val)
                return false;
        }
    }
    return true;
}

/** A same-target branch can only collapse to a jump if the target's
 *  phis do not distinguish its two edges. */
bool
dupEdgeSlotsAgree(const Block &blk, int pred)
{
    for (const Instr &in : blk.instrs) {
        if (in.op != Op::Phi)
            break;
        Vreg first = NO_VREG;
        bool seen = false;
        for (size_t k = 0; k < in.phiBlocks.size(); ++k) {
            if (in.phiBlocks[k] != pred)
                continue;
            if (seen && in.srcs[k] != first)
                return false;
            first = in.srcs[k];
            seen = true;
        }
    }
    return true;
}

/** The edge newPred -> blk replaces an edge that used to run through
 *  `via` (still a predecessor for its other edges): duplicate the
 *  threaded slot value for the new predecessor. */
void
addThreadedPhiSlot(Block &blk, int via, int newPred)
{
    for (Instr &in : blk.instrs) {
        if (in.op != Op::Phi)
            break;
        for (size_t k = 0; k < in.phiBlocks.size(); ++k) {
            if (in.phiBlocks[k] == via) {
                in.srcs.push_back(in.srcs[k]);
                in.phiBlocks.push_back(newPred);
                break;
            }
        }
    }
}

/** Rename predecessor `from` to `to` in every phi slot of blk. */
void
renamePhiPred(Block &blk, int from, int to)
{
    for (Instr &in : blk.instrs) {
        if (in.op != Op::Phi)
            break;
        for (int &p : in.phiBlocks) {
            if (p == from)
                p = to;
        }
    }
}

} // namespace

bool
simplifyCfg(Function &func)
{
    bool changed_any = false;
    bool changed = true;
    int guard = 0;
    while (changed && ++guard < 64) {
        changed = false;

        // Collapse branches whose arms agree (one phi slot per
        // dropped duplicate edge goes with it).
        for (int b : func.reversePostOrder()) {
            Block &blk = func.block(b);
            if (blk.terminator().op == Op::Branch &&
                blk.succs.size() == 2 && blk.succs[0] == blk.succs[1] &&
                dupEdgeSlotsAgree(func.block(blk.succs[0]), b)) {
                Instr jump;
                jump.op = Op::Jump;
                jump.bcPc = blk.terminator().bcPc;
                jump.bcMethod = blk.terminator().bcMethod;
                blk.instrs.back() = std::move(jump);
                blk.succs.pop_back();
                const double total =
                    blk.succCount.size() == 2
                        ? blk.succCount[0] + blk.succCount[1]
                        : blk.execCount;
                blk.succCount = {total};
                dropPhiSlot(func.block(blk.succs[0]), b);
                changed = true;
            }
        }

        // Thread edges through trivial jump blocks. Region entries
        // are skipped: their second successor is the abort exception
        // edge and must stay equal to RegionInfo::altBlock.
        for (int b : func.reversePostOrder()) {
            Block &blk = func.block(b);
            if (isRegionEntry(blk))
                continue;
            for (int &s : blk.succs) {
                int hops = 0;
                while (hops++ < 8) {
                    Block &target = func.block(s);
                    if (!isTrivialJump(target) || target.id == blk.id)
                        break;
                    const int next = target.succs[0];
                    if (!threadKeepsPhisUnambiguous(func.block(next),
                                                    target.id, blk.id))
                        break;
                    // The threaded block stays a predecessor of
                    // `next` for its remaining edges; our new edge
                    // needs its own phi slot carrying the same
                    // values.
                    addThreadedPhiSlot(func.block(next), target.id,
                                       blk.id);
                    s = next;
                    changed = true;
                }
            }
        }
        if (isTrivialJump(func.block(func.entry)) &&
            !isRegionEntry(func.block(func.entry)) &&
            !hasPhis(func.block(
                func.block(func.entry).succs[0]))) {
            // The new entry must not carry phis: the implicit
            // function-entry edge has no slot to populate.
            func.entry = func.block(func.entry).succs[0];
            changed = true;
        }

        // Merge straight-line pairs b -> s where s has b as its only
        // predecessor. Region boundaries are kept intact.
        const auto preds = func.computePreds();
        for (int b : func.reversePostOrder()) {
            Block &blk = func.block(b);
            if (blk.succs.size() != 1 ||
                blk.terminator().op != Op::Jump) {
                continue;
            }
            const int s = blk.succs[0];
            if (s == b || s == func.entry)
                continue;
            Block &next = func.block(s);
            if (preds[static_cast<size_t>(s)].size() != 1)
                continue;
            if (isRegionEntry(blk) || isRegionEntry(next))
                continue;
            if (blk.regionId != next.regionId)
                continue;
            if (endsWithCall(blk))
                continue;
            // Keep synchronized-method epilogues (MonitorExit blocks)
            // separate from their Ret blocks: region formation stops
            // at Ret blocks but must replicate the epilogue so SLE
            // sees balanced monitor pairs.
            bool has_monitor_exit = false;
            for (const Instr &in : blk.instrs)
                has_monitor_exit |= in.op == Op::MonitorExit;
            if (has_monitor_exit && next.terminator().op == Op::Ret)
                continue;
            // Don't merge into a region alt block (reached by the
            // abort exception edge, which preds don't see).
            bool is_alt = false;
            for (const RegionInfo &r : func.regions)
                is_alt |= r.altBlock == s;
            if (is_alt)
                continue;

            // A single-predecessor block's phis are arity-1; they
            // lower to plain copies at the merge point.
            for (size_t i = 0; i < next.instrs.size(); ++i) {
                Instr &in = next.instrs[i];
                if (in.op != Op::Phi)
                    break;
                in.op = Op::Mov;
                in.srcs.resize(1);
                in.phiBlocks.clear();
            }
            blk.instrs.pop_back();      // drop the jump
            blk.instrs.insert(blk.instrs.end(), next.instrs.begin(),
                              next.instrs.end());
            blk.succs = next.succs;
            blk.succCount = next.succCount;
            // Successor phis now see the merged block as their
            // predecessor.
            for (int t : blk.succs)
                renamePhiPred(func.block(t), s, b);
            next.instrs.clear();
            next.succs.clear();
            {
                Instr ret;
                ret.op = Op::Ret;
                next.instrs.push_back(std::move(ret)); // dead tombstone
            }
            changed = true;
            break;  // preds are stale; restart the sweep
        }

        changed_any |= changed;
    }

    if (changed_any)
        func.compact();
    return changed_any;
}

} // namespace aregion::opt
