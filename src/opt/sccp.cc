/**
 * @file
 * Sparse conditional constant propagation over SSA form, plus SSA
 * copy forwarding.
 *
 * Replaces the dense constant_fold + copy_prop pair: the lattice
 * lives on SSA names instead of per-block vectors of every vreg, and
 * only names whose value changes push work. Branch arms proven
 * constant are pruned optimistically (an edge contributes to a phi
 * meet only once shown executable), which is the one place this pass
 * is stronger than the dense formulation it replaced.
 *
 * The rewrite rules are carried over unchanged:
 *  - binops fold through vm::arith Java semantics (div/rem by a
 *    constant zero never folds — the DivCheck in front of it traps),
 *  - algebraic identities with a constant operand (x+0, x*1, x&0...),
 *  - Assert / BoundsCheck / DivCheck / SizeCheck sites that provably
 *    pass are deleted; NullCheck and TypeCheck are never folded,
 *  - a Branch on a constant becomes a Jump and the dead edge's phi
 *    slots are removed.
 *
 * Copy forwarding is total in SSA: every `d = mov s` rewrites all
 * uses of d (including phi inputs) to s and disappears — no
 * availability dataflow, no hop limits.
 */

#include "opt/pass.hh"

#include <optional>

#include "support/logging.hh"
#include "vm/arith.hh"

namespace aregion::opt {

using namespace aregion::ir;

namespace {

/** Three-level constant lattice over SSA names. */
struct LatVal
{
    enum Kind : uint8_t { Top, Const, Bot };
    Kind kind = Top;
    int64_t value = 0;

    static LatVal top() { return {}; }
    static LatVal bot() { return {Bot, 0}; }
    static LatVal c(int64_t v) { return {Const, v}; }

    bool
    operator==(const LatVal &o) const
    {
        return kind == o.kind && (kind != Const || value == o.value);
    }
};

LatVal
meet(const LatVal &a, const LatVal &b)
{
    if (a.kind == LatVal::Top)
        return b;
    if (b.kind == LatVal::Top)
        return a;
    if (a.kind == LatVal::Bot || b.kind == LatVal::Bot)
        return LatVal::bot();
    return a.value == b.value ? a : LatVal::bot();
}

/** Fold a pure binop; nullopt when not foldable (e.g. div by 0). */
std::optional<int64_t>
foldBinop(Op op, int64_t a, int64_t b)
{
    namespace arith = vm::arith;
    switch (op) {
      case Op::Add: return arith::javaAdd(a, b);
      case Op::Sub: return arith::javaSub(a, b);
      case Op::Mul: return arith::javaMul(a, b);
      case Op::Div:
        if (b == 0)
            return std::nullopt;
        return arith::javaDiv(a, b);
      case Op::Rem:
        if (b == 0)
            return std::nullopt;
        return arith::javaRem(a, b);
      case Op::And: return a & b;
      case Op::Or: return a | b;
      case Op::Xor: return a ^ b;
      case Op::Shl: return arith::javaShl(a, b);
      case Op::Shr: return arith::javaShr(a, b);
      case Op::CmpEq: return a == b;
      case Op::CmpNe: return a != b;
      case Op::CmpLt: return a < b;
      case Op::CmpLe: return a <= b;
      case Op::CmpGt: return a > b;
      case Op::CmpGe: return a >= b;
      default: return std::nullopt;
    }
}

bool
isBinop(Op op)
{
    switch (op) {
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::Rem: case Op::And: case Op::Or: case Op::Xor:
      case Op::Shl: case Op::Shr:
      case Op::CmpEq: case Op::CmpNe: case Op::CmpLt: case Op::CmpLe:
      case Op::CmpGt: case Op::CmpGe:
        return true;
      default:
        return false;
    }
}

/** Solver state: value per name, executability per CFG edge. */
struct Solver
{
    Function &func;
    std::vector<LatVal> value;
    /** Per block: bitmask of executable outgoing edges (by succ
     *  index; blocks have at most 2 successors). */
    std::vector<uint8_t> edgeExec;
    std::vector<uint8_t> blockExec;
    /** Defining site per name (block, instr index), or block -1 for
     *  entry values. */
    std::vector<int> defBlk;
    std::vector<int> defIdx;
    /** name -> instructions using it, as (block, index) pairs. */
    std::vector<std::vector<std::pair<int, int>>> uses;

    std::vector<std::pair<int, int>> flowWork;  // (block, succIdx)
    std::vector<Vreg> ssaWork;

    explicit Solver(Function &f) : func(f)
    {
        const size_t nv = static_cast<size_t>(func.numVregs());
        value.resize(nv);
        defBlk.assign(nv, -1);
        defIdx.assign(nv, -1);
        uses.resize(nv);
        edgeExec.assign(static_cast<size_t>(func.numBlocks()), 0);
        blockExec.assign(static_cast<size_t>(func.numBlocks()), 0);
        for (int b : func.reversePostOrder()) {
            const Block &blk = func.block(b);
            for (size_t i = 0; i < blk.instrs.size(); ++i) {
                const Instr &in = blk.instrs[i];
                if (in.dst != NO_VREG) {
                    defBlk[static_cast<size_t>(in.dst)] = b;
                    defIdx[static_cast<size_t>(in.dst)] =
                        static_cast<int>(i);
                }
                for (Vreg s : in.srcs) {
                    uses[static_cast<size_t>(s)].emplace_back(
                        b, static_cast<int>(i));
                }
            }
        }
        // Entry values: arguments are unknown, everything else reads
        // the zero-initialised frame slot.
        for (int v = 0; v < func.numVregs(); ++v) {
            if (defBlk[static_cast<size_t>(v)] == -1) {
                value[static_cast<size_t>(v)] =
                    v < func.numArgs ? LatVal::bot() : LatVal::c(0);
            }
        }
    }

    LatVal val(Vreg v) const { return value[static_cast<size_t>(v)]; }

    void
    raise(Vreg d, const LatVal &nv)
    {
        LatVal &slot = value[static_cast<size_t>(d)];
        const LatVal merged = meet(slot, nv);
        if (merged == slot)
            return;
        slot = merged;
        ssaWork.push_back(d);
    }

    bool
    edgeExecutableInto(int pred, int b) const
    {
        const Block &pb = func.block(pred);
        for (size_t s = 0; s < pb.succs.size(); ++s) {
            if (pb.succs[s] == b &&
                (edgeExec[static_cast<size_t>(pred)] >> s & 1)) {
                return true;
            }
        }
        return false;
    }

    void
    visitPhi(int b, const Instr &in)
    {
        LatVal merged = LatVal::top();
        for (size_t k = 0; k < in.srcs.size(); ++k) {
            if (edgeExecutableInto(in.phiBlocks[k], b))
                merged = meet(merged, val(in.srcs[k]));
        }
        raise(in.dst, merged);
    }

    void
    visitInstr(int b, const Instr &in)
    {
        if (in.op == Op::Phi) {
            visitPhi(b, in);
            return;
        }
        if (in.dst != NO_VREG) {
            LatVal out = LatVal::bot();
            if (in.op == Op::Const) {
                out = LatVal::c(in.imm);
            } else if (in.op == Op::Mov) {
                out = val(in.s0());
            } else if (isBinop(in.op)) {
                const LatVal a = val(in.s0());
                const LatVal c = val(in.s1());
                if (a.kind == LatVal::Const &&
                    c.kind == LatVal::Const) {
                    const auto folded =
                        foldBinop(in.op, a.value, c.value);
                    out = folded ? LatVal::c(*folded) : LatVal::bot();
                } else if (a.kind == LatVal::Top ||
                           c.kind == LatVal::Top) {
                    out = LatVal::top();
                }
            }
            raise(in.dst, out);
        }
        if (isTerminator(in.op)) {
            const Block &blk = func.block(b);
            if (in.op == Op::Branch) {
                const LatVal c = val(in.s0());
                if (c.kind == LatVal::Const) {
                    markEdge(b, c.value != 0 ? 0 : 1);
                } else if (c.kind == LatVal::Bot) {
                    markEdge(b, 0);
                    markEdge(b, 1);
                }
            } else if (in.op == Op::Jump) {
                // A region entry's Jump carries two successors (body
                // and abort edge); both can execute.
                for (size_t s = 0; s < blk.succs.size(); ++s)
                    markEdge(b, static_cast<int>(s));
            }
        }
    }

    void
    markEdge(int b, int succIdx)
    {
        const uint8_t bit = static_cast<uint8_t>(1u << succIdx);
        if (edgeExec[static_cast<size_t>(b)] & bit)
            return;
        edgeExec[static_cast<size_t>(b)] |= bit;
        flowWork.emplace_back(b, succIdx);
    }

    void
    run()
    {
        // The entry block executes unconditionally.
        visitBlock(func.entry);
        while (!flowWork.empty() || !ssaWork.empty()) {
            while (!ssaWork.empty()) {
                const Vreg v = ssaWork.back();
                ssaWork.pop_back();
                for (const auto &[ub, ui] :
                     uses[static_cast<size_t>(v)]) {
                    if (blockExec[static_cast<size_t>(ub)])
                        visitInstr(ub, func.block(ub).instrs[
                            static_cast<size_t>(ui)]);
                }
            }
            if (!flowWork.empty()) {
                const auto [b, s] = flowWork.back();
                flowWork.pop_back();
                const int target = func.block(b).succs[
                    static_cast<size_t>(s)];
                if (!blockExec[static_cast<size_t>(target)]) {
                    visitBlock(target);
                } else {
                    // Newly executable edge into a visited block:
                    // its phi meets gain a slot.
                    for (const Instr &in :
                         func.block(target).instrs) {
                        if (in.op != Op::Phi)
                            break;
                        visitPhi(target, in);
                    }
                }
            }
        }
    }

    void
    visitBlock(int b)
    {
        blockExec[static_cast<size_t>(b)] = 1;
        for (const Instr &in : func.block(b).instrs)
            visitInstr(b, in);
    }
};

/** Remove one phi slot for the edge pred -> blk (a constant branch
 *  dropped it). */
void
dropPhiSlot(Block &blk, int pred)
{
    for (Instr &in : blk.instrs) {
        if (in.op != Op::Phi)
            break;
        for (size_t k = 0; k < in.phiBlocks.size(); ++k) {
            if (in.phiBlocks[k] == pred) {
                in.phiBlocks.erase(in.phiBlocks.begin() +
                                   static_cast<long>(k));
                in.srcs.erase(in.srcs.begin() +
                              static_cast<long>(k));
                break;
            }
        }
    }
}

/** Forward every use through mov chains, then delete the movs. */
bool
forwardCopies(Function &func)
{
    const size_t nv = static_cast<size_t>(func.numVregs());
    std::vector<Vreg> fwd(nv, NO_VREG);
    bool any = false;
    for (int b : func.reversePostOrder()) {
        for (const Instr &in : func.block(b).instrs) {
            if (in.op == Op::Mov && in.dst != NO_VREG) {
                fwd[static_cast<size_t>(in.dst)] = in.s0();
                any = true;
            }
        }
    }
    if (!any)
        return false;
    auto resolve = [&](Vreg v) {
        while (fwd[static_cast<size_t>(v)] != NO_VREG)
            v = fwd[static_cast<size_t>(v)];
        return v;
    };
    for (int b : func.reversePostOrder()) {
        Block &blk = func.block(b);
        std::vector<Instr> out;
        out.reserve(blk.instrs.size());
        for (Instr &in : blk.instrs) {
            if (in.op == Op::Mov)
                continue;
            for (Vreg &s : in.srcs)
                s = resolve(s);
            out.push_back(std::move(in));
        }
        blk.instrs = std::move(out);
    }
    return true;
}

} // namespace

bool
sccp(Function &func)
{
    AREGION_ASSERT(func.ssaForm, "sccp requires SSA form");
    Solver solver(func);
    solver.run();

    bool changed = false;
    const auto rpo = func.reversePostOrder();
    for (int b : rpo) {
        if (!solver.blockExec[static_cast<size_t>(b)])
            continue;   // pruned below once const branches rewrite
        Block &blk = func.block(b);
        auto cst = [&](Vreg v) -> std::optional<int64_t> {
            const LatVal lv = solver.val(v);
            if (lv.kind == LatVal::Const)
                return lv.value;
            return std::nullopt;
        };
        auto to_const = [&](Instr &target, int64_t v) {
            target.op = Op::Const;
            target.srcs.clear();
            target.phiBlocks.clear();
            target.imm = v;
            changed = true;
        };
        auto to_mov = [&](Instr &target, Vreg src) {
            target.op = Op::Mov;
            target.srcs = {src};
            target.imm = 0;
            changed = true;
        };

        std::vector<Instr> out;
        out.reserve(blk.instrs.size());
        // Phis whose meet is constant become Const defs; they must
        // slot in after the surviving phis to keep phis leading.
        std::vector<Instr> loweredPhis;
        for (Instr &in : blk.instrs) {
            if (in.op == Op::Phi) {
                if (const auto v = cst(in.dst)) {
                    to_const(in, *v);
                    loweredPhis.push_back(std::move(in));
                } else {
                    out.push_back(std::move(in));
                }
                continue;
            }
            if (!loweredPhis.empty()) {
                for (Instr &phi : loweredPhis)
                    out.push_back(std::move(phi));
                loweredPhis.clear();
            }
            if (isBinop(in.op)) {
                const auto a = cst(in.s0());
                const auto b2 = cst(in.s1());
                if (a && b2) {
                    if (const auto f = foldBinop(in.op, *a, *b2))
                        to_const(in, *f);
                } else if (b2) {
                    // Algebraic identities with a constant rhs.
                    if ((in.op == Op::Add || in.op == Op::Sub ||
                         in.op == Op::Or || in.op == Op::Xor ||
                         in.op == Op::Shl || in.op == Op::Shr) &&
                        *b2 == 0) {
                        to_mov(in, in.s0());
                    } else if (in.op == Op::Mul && *b2 == 1) {
                        to_mov(in, in.s0());
                    } else if ((in.op == Op::Mul || in.op == Op::And) &&
                               *b2 == 0) {
                        to_const(in, 0);
                    }
                } else if (a) {
                    if (in.op == Op::Add && *a == 0)
                        to_mov(in, in.s1());
                    else if (in.op == Op::Mul && *a == 1)
                        to_mov(in, in.s1());
                    else if ((in.op == Op::Mul || in.op == Op::And) &&
                             *a == 0)
                        to_const(in, 0);
                }
            } else if (in.op == Op::Mov) {
                if (const auto a = cst(in.s0()))
                    to_const(in, *a);
            } else if (in.op == Op::Assert) {
                // An assert that provably never fires (respecting its
                // polarity) disappears.
                const auto a = cst(in.s0());
                if (a && (in.imm ? *a != 0 : *a == 0)) {
                    changed = true;
                    continue;
                }
            } else if (in.op == Op::BoundsCheck) {
                const auto idx = cst(in.s0());
                const auto len = cst(in.s1());
                if (idx && len && *idx >= 0 && *idx < *len) {
                    changed = true;
                    continue;
                }
            } else if (in.op == Op::DivCheck || in.op == Op::SizeCheck) {
                const auto a = cst(in.s0());
                if (a && ((in.op == Op::DivCheck && *a != 0) ||
                          (in.op == Op::SizeCheck && *a >= 0))) {
                    changed = true;
                    continue;
                }
            } else if (in.op == Op::Branch) {
                if (const auto a = cst(in.s0())) {
                    const int keep = *a != 0 ? 0 : 1;
                    const int target = blk.succs[
                        static_cast<size_t>(keep)];
                    const int dropped = blk.succs[
                        static_cast<size_t>(1 - keep)];
                    in.op = Op::Jump;
                    in.srcs.clear();
                    blk.succs = {target};
                    blk.succCount = {blk.execCount};
                    dropPhiSlot(func.block(dropped), b);
                    changed = true;
                }
            }
            out.push_back(std::move(in));
        }
        blk.instrs = std::move(out);
    }

    changed |= forwardCopies(func);

    if (changed)
        func.compact();
    return changed;
}

} // namespace aregion::opt
