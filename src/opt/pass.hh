/**
 * @file
 * Pass declarations and pipeline drivers.
 *
 * Every pass here is a *non-speculative* formulation — correct over
 * all CFG paths with no knowledge of atomic regions beyond generic
 * facts (e.g. Assert is essential for DCE; monitor/safepoint
 * instructions inside an isolated region do not invalidate loads).
 * That property is the paper's central claim: converting cold edges
 * into asserts lets these same passes perform speculative
 * optimizations with zero new pass code.
 *
 * The scalar passes run on SSA form: runScalarPipeline builds SSA,
 * iterates simplify/sccp/gvn/dce to a fixpoint, and lowers back out
 * of SSA before returning, so callers (region formation, translation,
 * machine-code emission) never see phis. The structural passes
 * (inlining, unrolling) operate on conventional form.
 */

#ifndef AREGION_OPT_PASS_HH
#define AREGION_OPT_PASS_HH

#include <string>
#include <vector>

#include "ir/ir.hh"
#include "vm/profile.hh"

namespace aregion::opt {

/** Tunables shared by the pipeline (baseline vs aggressive etc.). */
struct OptContext
{
    const vm::Profile *profile = nullptr;

    /** Max callee size (IR instrs) eligible for inlining. The
     *  paper's "aggressive" configurations scale these by 5x. */
    int inlineCalleeLimit = 40;
    /** Max per-function growth (IR instrs) per inlining sweep. */
    int inlineGrowthLimit = 450;
    /** Receiver bias needed to devirtualize a virtual call site. */
    double devirtBias = 0.95;
    /** Partial-inlining criterion (paper Section 6.1): refuse to
     *  inline callees containing polymorphic virtual call sites. */
    bool refusePolymorphicCallees = false;
    /** Treat every profiled virtual site as effectively monomorphic
     *  (the jython grey-bar experiment). */
    bool assumeMonomorphic = false;
    /** Atomic-mode partial inlining (region formation Step 1): a
     *  callee whose hot body will be fully encapsulated in a region
     *  (no loops, no warm calls, no polymorphic sites) may be
     *  inlined up to this size even when it exceeds
     *  inlineCalleeLimit. 0 disables. */
    int partialInlineLimit = 0;
    /** Baseline loop unrolling (factor 2) body size limit; 0 = off. */
    int unrollBodyLimit = 24;
    /** Min (back-edge count / entry count) before unrolling pays. */
    double unrollMinTrip = 4.0;
    /** Scalar pipeline fixpoint bound. */
    int maxScalarIters = 8;
};

/** CFG cleanup: thread trivial jumps, merge straight-line pairs,
 *  collapse same-target branches, drop unreachable blocks. Phi-aware;
 *  runs on SSA and conventional form alike. */
bool simplifyCfg(ir::Function &func);

/** Sparse conditional constant propagation (SSA only): constant and
 *  copy lattices over executable edges, folding, algebraic
 *  identities, constant-branch elimination, dead asserts/checks, and
 *  copy forwarding (subsumes the old constant-fold + copy-prop
 *  pair). */
bool sccp(ir::Function &func);

/** Global value numbering over available expressions (SSA only):
 *  arithmetic, loads with field-sensitive kills and store-to-load
 *  forwarding, safety checks, asserts. GEN/KILL sets are built in a
 *  single scan per block and merged by bitvector dataflow, replacing
 *  the quadratic per-query predecessor re-simulation of the old CSE.
 *  The isolation guarantee of atomic regions is honoured: safepoints
 *  and monitor operations kill loads only outside regions. */
bool gvn(ir::Function &func);

/** Mark-and-sweep dead code elimination (asserts and checks are
 *  essential and never removed here). Exact in SSA form — dead phi
 *  cycles are removed — and conservative on conventional form. */
bool deadCodeElim(ir::Function &func);

/** Profile-guided inlining of static calls plus guarded
 *  devirtualization of monomorphic virtual call sites (module
 *  level). Requires conventional (non-SSA) form. When `touched` is
 *  non-null it receives the ids of the callers this sweep modified,
 *  so the driver can re-clean only those. */
bool inlineCalls(ir::Module &mod, const OptContext &ctx,
                 std::vector<vm::MethodId> *touched = nullptr);

/** Baseline factor-2 unrolling of hot innermost loops. Requires
 *  conventional (non-SSA) form. */
bool unrollLoops(ir::Function &func, const OptContext &ctx);

/** Build SSA, run the scalar passes (simplify/sccp/gvn/dce) to a
 *  fixpoint, lower out of SSA; returns true if anything changed.
 *  Set AREGION_VERIFY_PASSES=1 to verify the function between every
 *  pass (debug aid; used by the sanitizer presets). */
bool runScalarPipeline(ir::Function &func, const OptContext &ctx);

/** Whole-module optimization: inline to fixpoint, scalar pipeline,
 *  unrolling, scalar pipeline again. */
void optimizeModule(ir::Module &mod, const OptContext &ctx);

/** Names of the passes in pipeline order (introspection/reporting). */
std::vector<std::string> pipelinePassNames();

} // namespace aregion::opt

#endif // AREGION_OPT_PASS_HH
