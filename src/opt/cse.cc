/**
 * @file
 * Global common-subexpression elimination over available expressions.
 *
 * The formulation is the textbook non-speculative one (bitvector
 * AVAIL dataflow, meet = intersection): an expression is redundant at
 * a site only if it was computed on EVERY path reaching the site with
 * no intervening kill. This is exactly why cold-path join edges block
 * optimization in baseline code, and why replacing those edges with
 * Asserts (which have no control-flow join) lets this very pass
 * perform the speculative optimizations of the paper.
 *
 * Expression classes handled:
 *  - pure arithmetic/comparisons (commutative ops canonicalised),
 *  - loads, with field-sensitive kills and store-to-load forwarding,
 *  - safety checks (redundant checks are deleted outright),
 *  - asserts (redundant asserts are deleted; paper Section 4).
 *
 * Memory kill rules encode the paper's isolation guarantee: monitor
 * operations and safepoints invalidate loads only OUTSIDE atomic
 * regions, because within a region the hardware guarantees isolation
 * from other threads.
 */

#include "opt/pass.hh"

#include <functional>
#include <map>

#include "vm/layout.hh"

namespace aregion::opt {

using namespace aregion::ir;

namespace {

/** Canonical key identifying a syntactic expression. */
struct ExprKey
{
    Op op;
    std::vector<Vreg> srcs;
    int64_t imm = 0;
    int aux = 0;

    bool
    operator<(const ExprKey &o) const
    {
        if (op != o.op)
            return op < o.op;
        if (imm != o.imm)
            return imm < o.imm;
        if (aux != o.aux)
            return aux < o.aux;
        return srcs < o.srcs;
    }
};

bool
isCommutative(Op op)
{
    switch (op) {
      case Op::Add: case Op::Mul: case Op::And: case Op::Or:
      case Op::Xor: case Op::CmpEq: case Op::CmpNe:
        return true;
      default:
        return false;
    }
}

/** Is this op an expression we track? */
bool
isExpr(Op op)
{
    if (isPureValue(op) && op != Op::Const && op != Op::Mov)
        return true;
    if (isLoad(op))
        return true;
    if (isCheck(op))
        return true;
    return op == Op::Assert;
}

ExprKey
keyOf(const Instr &in)
{
    ExprKey key;
    key.op = in.op;
    key.srcs = in.srcs;
    switch (in.op) {
      case Op::LoadField:
        key.aux = in.aux;
        break;
      case Op::LoadRaw:
        key.imm = in.imm;
        break;
      case Op::LoadSubtype:
        key.aux = in.aux;
        break;
      case Op::Assert:
        // Asserts with the same condition and polarity are
        // interchangeable even when their abort ids differ.
        key.imm = in.imm;
        break;
      default:
        break;
    }
    if (isCommutative(in.op) && key.srcs.size() == 2 &&
        key.srcs[0] > key.srcs[1]) {
        std::swap(key.srcs[0], key.srcs[1]);
    }
    return key;
}

/** Dense bitset sized to the expression universe. */
class BitSet
{
  public:
    explicit BitSet(size_t bits = 0)
        : words((bits + 63) / 64, 0), numBits(bits)
    {
    }

    void set(size_t i) { words[i / 64] |= 1ull << (i % 64); }
    void clear(size_t i) { words[i / 64] &= ~(1ull << (i % 64)); }
    bool test(size_t i) const
    {
        return words[i / 64] >> (i % 64) & 1;
    }

    void
    setAll()
    {
        for (auto &w : words)
            w = ~0ull;
        trim();
    }

    void
    intersect(const BitSet &o)
    {
        for (size_t i = 0; i < words.size(); ++i)
            words[i] &= o.words[i];
    }

    void
    subtract(const BitSet &o)
    {
        for (size_t i = 0; i < words.size(); ++i)
            words[i] &= ~o.words[i];
    }

    void
    unite(const BitSet &o)
    {
        for (size_t i = 0; i < words.size(); ++i)
            words[i] |= o.words[i];
    }

    bool operator==(const BitSet &o) const { return words == o.words; }

  private:
    void
    trim()
    {
        if (numBits % 64 && !words.empty())
            words.back() &= (1ull << (numBits % 64)) - 1;
    }

    std::vector<uint64_t> words;
    size_t numBits;
};

/** Everything the pass knows about the expression universe. */
struct Universe
{
    std::map<ExprKey, int> index;
    std::vector<ExprKey> exprs;
    /** vreg -> expressions using it as an operand. */
    std::map<Vreg, std::vector<int>> usedBy;
    /** Expression ids per kill class. */
    std::vector<int> loadsField;    // per field idx: flattened below
    std::map<int, std::vector<int>> loadFieldByAux;
    std::vector<int> loadElem;
    std::map<int64_t, std::vector<int>> loadRawByImm;
    std::vector<int> allLoads;      // excludes LoadSubtype

    int
    idOf(const Instr &in)
    {
        const ExprKey key = keyOf(in);
        auto it = index.find(key);
        if (it != index.end())
            return it->second;
        const int id = static_cast<int>(exprs.size());
        index.emplace(key, id);
        exprs.push_back(key);
        for (Vreg v : key.srcs)
            usedBy[v].push_back(id);
        switch (key.op) {
          case Op::LoadField:
            loadFieldByAux[key.aux].push_back(id);
            allLoads.push_back(id);
            break;
          case Op::LoadElem:
            loadElem.push_back(id);
            allLoads.push_back(id);
            break;
          case Op::LoadRaw:
            loadRawByImm[key.imm].push_back(id);
            allLoads.push_back(id);
            break;
          default:
            break;
        }
        return id;
    }
};

/** Kill ids produced by the side effects of one instruction
 *  (excluding the dst-vreg kill, handled separately). */
void
memoryKills(const Instr &in, bool in_region, const Universe &uni,
            std::vector<int> &out)
{
    auto addAll = [&](const std::vector<int> &ids) {
        out.insert(out.end(), ids.begin(), ids.end());
    };
    switch (in.op) {
      case Op::StoreField: {
        auto it = uni.loadFieldByAux.find(in.aux);
        if (it != uni.loadFieldByAux.end())
            addAll(it->second);
        break;
      }
      case Op::StoreElem:
        addAll(uni.loadElem);
        break;
      case Op::StoreRaw: {
        auto it = uni.loadRawByImm.find(in.imm);
        if (it != uni.loadRawByImm.end())
            addAll(it->second);
        break;
      }
      case Op::CallStatic:
      case Op::CallVirtual:
      case Op::Spawn:
      case Op::AtomicBegin:
      case Op::AtomicEnd:
        addAll(uni.allLoads);
        break;
      case Op::MonitorEnter:
      case Op::MonitorExit:
        if (in_region) {
            // Isolation: within a region only the lock word itself
            // is written.
            auto it = uni.loadRawByImm.find(vm::layout::HDR_LOCK);
            if (it != uni.loadRawByImm.end())
                addAll(it->second);
        } else {
            addAll(uni.allLoads);
        }
        break;
      case Op::Safepoint:
        if (!in_region)
            addAll(uni.allLoads);
        break;
      case Op::NewObject:
      case Op::NewArray:
        // Fresh memory: existing loads unaffected.
        break;
      default:
        break;
    }
}

/** Store-to-load forwarding: the expression this store makes
 *  available (with its value held in a source vreg), or -1. */
int
forwardedExpr(const Instr &in, Universe &uni, Vreg &value_out)
{
    Instr load;
    switch (in.op) {
      case Op::StoreField:
        load.op = Op::LoadField;
        load.srcs = {in.s0()};
        load.aux = in.aux;
        value_out = in.s1();
        break;
      case Op::StoreElem:
        load.op = Op::LoadElem;
        load.srcs = {in.s0(), in.s1()};
        value_out = in.s2();
        break;
      case Op::StoreRaw:
        load.op = Op::LoadRaw;
        load.srcs = {in.s0()};
        load.imm = in.imm;
        value_out = in.s1();
        break;
      default:
        return -1;
    }
    return uni.idOf(load);
}

} // namespace

bool
commonSubexpressionElim(Function &func)
{
    const auto rpo = func.reversePostOrder();
    const auto preds = func.computePreds();
    std::vector<uint8_t> reachable(
        static_cast<size_t>(func.numBlocks()), 0);
    for (int b : rpo)
        reachable[static_cast<size_t>(b)] = 1;

    // Build the universe by scanning every expression-shaped
    // instruction plus forwarded stores.
    Universe uni;
    for (int b : rpo) {
        for (const Instr &in : func.block(b).instrs) {
            if (isExpr(in.op))
                uni.idOf(in);
            Vreg ignored;
            forwardedExpr(in, uni, ignored);
        }
    }
    const size_t n = uni.exprs.size();
    if (n == 0)
        return false;

    // Local GEN/KILL via simulation, shared with the rewrite phase.
    auto simulate = [&](int b, BitSet &avail,
                        const std::function<void(size_t, BitSet &)>
                            &visit) {
        Block &blk = func.block(b);
        const bool in_region = blk.regionId >= 0;
        std::vector<int> kills;
        for (size_t i = 0; i < blk.instrs.size(); ++i) {
            if (visit)
                visit(i, avail);
            const Instr &in = blk.instrs[i];
            // 1. Generate this expression.
            if (isExpr(in.op))
                avail.set(static_cast<size_t>(uni.idOf(in)));
            // 2. Memory kills.
            kills.clear();
            memoryKills(in, in_region, uni, kills);
            for (int k : kills)
                avail.clear(static_cast<size_t>(k));
            // 3. Store-to-load forwarding gen.
            Vreg fwd_value;
            const int fwd = forwardedExpr(in, uni, fwd_value);
            if (fwd >= 0)
                avail.set(static_cast<size_t>(fwd));
            // 4. Register kill for the destination.
            if (in.dst != NO_VREG) {
                auto it = uni.usedBy.find(in.dst);
                if (it != uni.usedBy.end()) {
                    for (int k : it->second)
                        avail.clear(static_cast<size_t>(k));
                }
            }
        }
    };

    // GEN/OUT dataflow: OUT = sim(IN). Compute by iterating; IN of
    // entry is empty, IN of others starts full (optimistic).
    std::vector<BitSet> in_sets(static_cast<size_t>(func.numBlocks()),
                                BitSet(n));
    for (int b : rpo) {
        if (b != func.entry)
            in_sets[static_cast<size_t>(b)].setAll();
    }
    bool dirty = true;
    int rounds = 0;
    while (dirty && ++rounds < 64) {
        dirty = false;
        for (int b : rpo) {
            if (b == func.entry)
                continue;
            BitSet merged(n);
            merged.setAll();
            bool any = false;
            for (int p : preds[static_cast<size_t>(b)]) {
                if (!reachable[static_cast<size_t>(p)])
                    continue;
                BitSet out = in_sets[static_cast<size_t>(p)];
                simulate(p, out, nullptr);
                merged.intersect(out);
                any = true;
            }
            if (!any)
                merged = BitSet(n);
            if (!(merged == in_sets[static_cast<size_t>(b)])) {
                in_sets[static_cast<size_t>(b)] = merged;
                dirty = true;
            }
        }
    }

    // Phase A: find expressions redundant somewhere.
    std::vector<uint8_t> redundant(n, 0);
    for (int b : rpo) {
        BitSet avail = in_sets[static_cast<size_t>(b)];
        simulate(b, avail, [&](size_t i, BitSet &state) {
            const Instr &in = func.block(b).instrs[i];
            if (isExpr(in.op)) {
                const auto id =
                    static_cast<size_t>(uni.idOf(in));
                if (state.test(id))
                    redundant[id] = 1;
            }
        });
    }

    bool any_redundant = false;
    for (uint8_t r : redundant)
        any_redundant |= r;
    if (!any_redundant)
        return false;

    // Allocate holding temps for redundant value-producing exprs.
    std::vector<Vreg> home(n, NO_VREG);
    for (size_t e = 0; e < n; ++e) {
        const Op op = uni.exprs[e].op;
        if (redundant[e] && !isCheck(op) && op != Op::Assert)
            home[e] = func.newVreg();
    }

    // Phase B: rewrite.
    bool changed = false;
    for (int b : rpo) {
        Block &blk = func.block(b);
        const bool in_region = blk.regionId >= 0;
        BitSet avail = in_sets[static_cast<size_t>(b)];
        std::vector<Instr> out;
        out.reserve(blk.instrs.size());
        std::vector<int> kills;
        for (Instr &in : blk.instrs) {
            bool drop = false;
            if (isExpr(in.op)) {
                const int id_i = uni.idOf(in);
                const auto id = static_cast<size_t>(id_i);
                if (avail.test(id)) {
                    if (isCheck(in.op) || in.op == Op::Assert) {
                        drop = true;        // redundant check/assert
                        changed = true;
                    } else if (home[id] != NO_VREG) {
                        Instr mov;
                        mov.op = Op::Mov;
                        mov.dst = in.dst;
                        mov.srcs = {home[id]};
                        mov.bcPc = in.bcPc;
                        mov.bcMethod = in.bcMethod;
                        in = std::move(mov);
                        changed = true;
                    }
                } else if (home[id] != NO_VREG &&
                           in.dst != home[id]) {
                    // Generating site of a redundant expr: compute
                    // into the home temp, copy to the original dst.
                    Instr compute = in;
                    compute.dst = home[id];
                    Instr mov;
                    mov.op = Op::Mov;
                    mov.dst = in.dst;
                    mov.srcs = {home[id]};
                    mov.bcPc = in.bcPc;
                    mov.bcMethod = in.bcMethod;
                    out.push_back(std::move(compute));
                    in = std::move(mov);
                    changed = true;
                    // Fall through to push `in` (the Mov) below; the
                    // avail updates use the original expression via
                    // the pushed compute instr, handled in the state
                    // updates beneath (we replay them manually).
                    avail.set(id);
                }
                // Note: the dst-kill below still runs for the final
                // pushed instruction.
            }

            if (!drop) {
                // State updates mirroring `simulate`.
                const Instr &fin = in;
                if (isExpr(fin.op))
                    avail.set(static_cast<size_t>(uni.idOf(fin)));
                kills.clear();
                memoryKills(fin, in_region, uni, kills);
                for (int k : kills)
                    avail.clear(static_cast<size_t>(k));
                Vreg fwd_value = NO_VREG;
                const int fwd = forwardedExpr(fin, uni, fwd_value);
                if (fwd >= 0)
                    avail.set(static_cast<size_t>(fwd));
                if (fin.dst != NO_VREG) {
                    auto it = uni.usedBy.find(fin.dst);
                    if (it != uni.usedBy.end()) {
                        for (int k : it->second)
                            avail.clear(static_cast<size_t>(k));
                    }
                }
                const int pc = in.bcPc;
                const int method = in.bcMethod;
                out.push_back(std::move(in));
                // Forwarded stores must also materialise the load's
                // value into its home temp, or a later "redundant"
                // load would read an unwritten register.
                if (fwd >= 0 &&
                    home[static_cast<size_t>(fwd)] != NO_VREG) {
                    Instr keep;
                    keep.op = Op::Mov;
                    keep.dst = home[static_cast<size_t>(fwd)];
                    keep.srcs = {fwd_value};
                    keep.bcPc = pc;
                    keep.bcMethod = method;
                    out.push_back(std::move(keep));
                }
            }
        }
        blk.instrs = std::move(out);
    }

    return changed;
}

} // namespace aregion::opt
