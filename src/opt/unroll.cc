/**
 * @file
 * Baseline loop unrolling (factor 2).
 *
 * Duplicates the body of hot innermost loops so redundancy between
 * consecutive iterations falls within one optimization scope. The
 * exit tests remain branches in this non-speculative formulation, so
 * cross-copy redundancy elimination is limited by the control flow —
 * exactly the limitation that atomic-region partial unrolling lifts.
 */

#include "opt/pass.hh"

#include <set>

#include "ir/cfg.hh"
#include "ir/loops.hh"

namespace aregion::opt {

using namespace aregion::ir;

bool
unrollLoops(Function &func, const OptContext &ctx)
{
    if (ctx.unrollBodyLimit <= 0)
        return false;
    // Body cloning duplicates defs wholesale; the pass only works on
    // conventional form. The pipeline driver lowers out of SSA before
    // calling us — this is a belt-and-braces check.
    AREGION_ASSERT(!func.ssaForm,
                   "unrollLoops requires conventional (non-SSA) form");

    const DominatorTree doms(func);
    const LoopForest forest(func, doms);

    // Pick eligible innermost loops before editing the CFG.
    std::vector<int> targets;
    for (int li : forest.postOrder()) {
        const Loop &loop = forest.loops()[static_cast<size_t>(li)];
        bool innermost = true;
        for (int lj = 0; lj < forest.numLoops(); ++lj) {
            innermost &= forest.loops()[static_cast<size_t>(lj)]
                             .parent != li;
        }
        if (!innermost)
            continue;
        int body_instrs = 0;
        bool has_region_code = false;
        for (int b : loop.blocks) {
            body_instrs +=
                static_cast<int>(func.block(b).instrs.size());
            has_region_code |= func.block(b).regionId >= 0;
            for (const Instr &in : func.block(b).instrs) {
                has_region_code |= in.op == Op::AtomicBegin ||
                                   in.op == Op::AtomicEnd;
            }
        }
        if (has_region_code || body_instrs > ctx.unrollBodyLimit)
            continue;
        // Profile: unroll only loops that actually iterate.
        const Block &header = func.block(loop.header);
        double entry_flow = 0;
        const auto preds = func.computePreds();
        for (int p : preds[static_cast<size_t>(loop.header)]) {
            if (!loop.contains(p)) {
                const Block &pb = func.block(p);
                for (size_t s = 0; s < pb.succs.size(); ++s) {
                    if (pb.succs[s] == loop.header &&
                        s < pb.succCount.size()) {
                        entry_flow += pb.succCount[s];
                    }
                }
            }
        }
        if (entry_flow <= 0 ||
            header.execCount / entry_flow < ctx.unrollMinTrip) {
            continue;
        }
        targets.push_back(li);
    }

    bool changed = false;
    for (int li : targets) {
        const Loop &loop = forest.loops()[static_cast<size_t>(li)];
        const std::set<int> body(loop.blocks.begin(),
                                 loop.blocks.end());
        const auto clones = cloneBlocks(func, body);
        // Original latches jump to the clone header; clone latches
        // jump back to the original header.
        for (int latch : loop.backEdgeSources) {
            redirectEdges(func, latch, loop.header,
                          clones.at(loop.header));
            redirectEdges(func, clones.at(latch),
                          clones.at(loop.header), loop.header);
        }
        // Each copy now executes half the iterations.
        for (int b : loop.blocks) {
            func.block(b).execCount /= 2;
            for (double &c : func.block(b).succCount)
                c /= 2;
            Block &clone = func.block(clones.at(b));
            clone.execCount /= 2;
            for (double &c : clone.succCount)
                c /= 2;
        }
        changed = true;
    }

    if (changed)
        func.compact();
    return changed;
}

} // namespace aregion::opt
