/**
 * @file
 * Profile-guided inlining and guarded devirtualization.
 *
 * Static calls to small callees are spliced into the caller (hot
 * sites first, bounded by a growth budget). Virtual call sites with a
 * dominant receiver class are rewritten into a class-check guard, a
 * direct call on the fast path, and the original virtual call on the
 * (cold) slow path; the guard's cold edge later becomes an Assert
 * inside atomic regions, which is how the paper's compiler speculates
 * on receiver types.
 */

#include "opt/pass.hh"

#include <algorithm>

#include "ir/dominators.hh"
#include "ir/loops.hh"
#include "vm/layout.hh"

namespace aregion::opt {

using namespace aregion::ir;

namespace {

struct CallSite
{
    int block;
    double heat;
    bool isVirtual;
};

/** Calls sit right before the block terminator by construction. */
const Instr &
callOf(const Function &func, int block)
{
    const Block &blk = func.block(block);
    AREGION_ASSERT(blk.instrs.size() >= 2, "call block too small");
    const Instr &in = blk.instrs[blk.instrs.size() - 2];
    AREGION_ASSERT(in.op == Op::CallStatic || in.op == Op::CallVirtual,
                   "no call at end of block ", block);
    return in;
}

/**
 * Splice a copy of `callee` into `caller` at the call in `site`.
 * The call block keeps its prefix, gains argument moves, and jumps
 * to the cloned entry; cloned returns jump to the continuation.
 */
void
spliceInline(Function &caller, const Function &callee, int site)
{
    Block &blk = caller.block(site);
    AREGION_ASSERT(blk.terminator().op == Op::Jump &&
                   blk.succs.size() == 1,
                   "call block lacks continuation jump");
    const int continuation = blk.succs[0];
    const double site_heat = blk.execCount;
    Instr call = blk.instrs[blk.instrs.size() - 2];
    AREGION_ASSERT(call.srcs.size() ==
                   static_cast<size_t>(callee.numArgs),
                   "inline arity mismatch");

    // Vreg remapping: every callee vreg becomes a fresh caller vreg.
    std::vector<Vreg> vmap(static_cast<size_t>(callee.numVregs()));
    for (auto &v : vmap)
        v = caller.newVreg();

    // Profile scaling: callee entry count approximates invocations.
    const double callee_entry =
        callee.block(callee.entry).execCount;
    const double scale =
        callee_entry > 0 ? site_heat / callee_entry : 0.0;

    // Clone callee blocks.
    std::vector<int> bmap(static_cast<size_t>(callee.numBlocks()), -1);
    for (int b = 0; b < callee.numBlocks(); ++b)
        bmap[static_cast<size_t>(b)] = caller.newBlock().id;
    for (int b = 0; b < callee.numBlocks(); ++b) {
        const Block &src = callee.block(b);
        Block &dst = caller.block(bmap[static_cast<size_t>(b)]);
        dst.execCount = src.execCount * scale;
        dst.succCount = src.succCount;
        for (double &c : dst.succCount)
            c *= scale;
        dst.succs = src.succs;
        for (int &s : dst.succs)
            s = bmap[static_cast<size_t>(s)];
        dst.instrs = src.instrs;
        for (Instr &in : dst.instrs) {
            if (in.dst != NO_VREG)
                in.dst = vmap[static_cast<size_t>(in.dst)];
            for (Vreg &v : in.srcs)
                v = vmap[static_cast<size_t>(v)];
        }
        // Returns become moves + jumps to the continuation.
        if (dst.terminator().op == Op::Ret) {
            Instr ret = dst.terminator();
            dst.instrs.pop_back();
            if (call.dst != NO_VREG) {
                AREGION_ASSERT(!ret.srcs.empty(),
                               "void return into call destination");
                Instr mov;
                mov.op = Op::Mov;
                mov.dst = call.dst;
                mov.srcs = {ret.srcs[0]};
                mov.bcPc = ret.bcPc;
                mov.bcMethod = ret.bcMethod;
                dst.instrs.push_back(std::move(mov));
            }
            Instr jump;
            jump.op = Op::Jump;
            jump.bcPc = ret.bcPc;
            jump.bcMethod = ret.bcMethod;
            dst.instrs.push_back(std::move(jump));
            dst.succs = {continuation};
            dst.succCount = {dst.execCount};
        }
    }

    // Rewrite the call block: prefix + argument moves + jump.
    blk.instrs.pop_back();      // jump
    blk.instrs.pop_back();      // call
    for (size_t i = 0; i < call.srcs.size(); ++i) {
        Instr mov;
        mov.op = Op::Mov;
        mov.dst = vmap[i];
        mov.srcs = {call.srcs[i]};
        mov.bcPc = call.bcPc;
        mov.bcMethod = call.bcMethod;
        blk.instrs.push_back(std::move(mov));
    }
    Instr jump;
    jump.op = Op::Jump;
    jump.bcPc = call.bcPc;
    jump.bcMethod = call.bcMethod;
    blk.instrs.push_back(std::move(jump));
    blk.succs = {bmap[static_cast<size_t>(callee.entry)]};
    blk.succCount = {site_heat};
}

/** Rewrite a monomorphic virtual call into guard + direct call. */
void
devirtualize(Function &caller, int site, vm::ClassId expected,
             vm::MethodId target, double bias)
{
    // bias == 1.0 (forced-monomorphic mode) profiles the guard's
    // slow edge as cold, so region formation converts it into an
    // assert and the callee becomes region-encapsulatable.
    Block &blk = caller.block(site);
    const int continuation = blk.succs[0];
    Instr call = blk.instrs[blk.instrs.size() - 2];
    const double heat = blk.execCount;

    Block &fast = caller.newBlock();
    Block &slow = caller.newBlock();
    fast.execCount = heat * bias;
    slow.execCount = heat * (1.0 - bias);

    // Guard in the call block.
    blk.instrs.pop_back();      // jump
    blk.instrs.pop_back();      // call
    const Vreg cls = caller.newVreg();
    const Vreg want = caller.newVreg();
    const Vreg differs = caller.newVreg();
    auto mk = [&](Op op, Vreg dst, std::vector<Vreg> srcs, int64_t imm,
                  int aux) {
        Instr in;
        in.op = op;
        in.dst = dst;
        in.srcs = std::move(srcs);
        in.imm = imm;
        in.aux = aux;
        in.bcPc = call.bcPc;
        in.bcMethod = call.bcMethod;
        return in;
    };
    blk.instrs.push_back(mk(Op::LoadRaw, cls, {call.srcs[0]},
                            vm::layout::HDR_CLASS, 0));
    blk.instrs.push_back(mk(Op::Const, want, {}, expected, 0));
    blk.instrs.push_back(mk(Op::CmpNe, differs, {cls, want}, 0, 0));
    blk.instrs.push_back(mk(Op::Branch, NO_VREG, {differs}, 0, 0));
    blk.succs = {slow.id, fast.id};
    blk.succCount = {heat * (1.0 - bias), heat * bias};

    // Fast path: direct call, inlinable next sweep.
    Instr direct = call;
    direct.op = Op::CallStatic;
    direct.aux = target;
    fast.instrs.push_back(std::move(direct));
    fast.instrs.push_back(mk(Op::Jump, NO_VREG, {}, 0, 0));
    fast.succs = {continuation};
    fast.succCount = {fast.execCount};

    // Slow path: the original virtual call, tagged (imm=1) so later
    // sweeps do not devirtualize it again.
    Instr residual = call;
    residual.imm = 1;
    slow.instrs.push_back(std::move(residual));
    slow.instrs.push_back(mk(Op::Jump, NO_VREG, {}, 0, 0));
    slow.succs = {continuation};
    slow.succCount = {slow.execCount};
}

/** Does the callee contain an executed virtual call site with no
 *  dominant receiver (a polymorphic site)? Used by the paper's
 *  partial-inlining criterion. */
bool
hasPolymorphicSite(const Function &callee, const OptContext &ctx)
{
    if (!ctx.profile || ctx.assumeMonomorphic)
        return false;
    for (int b : callee.reversePostOrder()) {
        for (const Instr &in : callee.block(b).instrs) {
            // Residual slow-path calls (imm == 1) still mark the
            // method as containing a polymorphic site.
            if (in.op != Op::CallVirtual)
                continue;
            const auto &mprof = ctx.profile->forMethod(in.bcMethod);
            auto it = mprof.callSites.find(in.bcPc);
            if (it == mprof.callSites.end() || it->second.total == 0)
                continue;   // never executed: cold, not blocking
            // Any non-cold polymorphism blocks partial inlining (the
            // paper's conservative criterion): a minority receiver
            // above the 1% cold threshold makes the site polymorphic
            // even when devirtualization (95%) would still fire.
            if (it->second.dominantReceiver(0.99) == vm::NO_CLASS)
                return true;
        }
    }
    return false;
}

/**
 * Region-encapsulation criterion for partial inlining (Algorithm 1's
 * un-inline step, applied at inline time): the callee must have no
 * loops and no calls reachable along non-cold paths, so its hot body
 * will be fully contained in the caller's atomic region.
 */
bool
isEncapsulatable(const Function &callee, const OptContext &ctx)
{
    const DominatorTree doms(callee);
    const LoopForest forest(callee, doms);
    if (forest.numLoops() > 0)
        return false;
    const double entry_exec = callee.block(callee.entry).execCount;
    for (int b : callee.reversePostOrder()) {
        const Block &blk = callee.block(b);
        if (blk.instrs.size() < 2)
            continue;
        const Op op = blk.instrs[blk.instrs.size() - 2].op;
        if ((op == Op::CallStatic || op == Op::CallVirtual) &&
            blk.execCount >= 0.01 * entry_exec) {
            return false;   // warm non-inlined call
        }
    }
    if (hasPolymorphicSite(callee, ctx))
        return false;
    return true;
}

} // namespace

bool
inlineCalls(Module &mod, const OptContext &ctx,
            std::vector<vm::MethodId> *touched)
{
    bool changed = false;
    for (auto &[mid, caller] : mod.funcs) {
        // Callee splicing renumbers vregs without phi maintenance;
        // the module must be in conventional form here (the pipeline
        // driver lowers out of SSA before structural passes run).
        AREGION_ASSERT(!caller.ssaForm,
                       "inlineCalls requires conventional form");
        const int initial_size = caller.countInstrs();
        int grown = 0;
        bool caller_any = false;
        bool caller_changed = true;
        int guard = 0;
        while (caller_changed && ++guard < 32 &&
               grown < ctx.inlineGrowthLimit) {
            caller_changed = false;

            // Collect sites hottest-first.
            std::vector<CallSite> sites;
            for (int b : caller.reversePostOrder()) {
                const Block &blk = caller.block(b);
                if (blk.instrs.size() < 2)
                    continue;
                const Instr &in =
                    blk.instrs[blk.instrs.size() - 2];
                if (in.op == Op::CallStatic ||
                    in.op == Op::CallVirtual) {
                    sites.push_back(
                        {b, blk.execCount,
                         in.op == Op::CallVirtual});
                }
            }
            std::sort(sites.begin(), sites.end(),
                      [](const CallSite &a, const CallSite &b) {
                          return a.heat > b.heat;
                      });

            for (const CallSite &site : sites) {
                const Instr call = callOf(caller, site.block);
                if (site.isVirtual) {
                    if (!ctx.profile || call.imm == 1)
                        continue;
                    const auto &mprof =
                        ctx.profile->forMethod(call.bcMethod);
                    auto pit = mprof.callSites.find(call.bcPc);
                    if (pit == mprof.callSites.end())
                        continue;
                    const vm::ClassId expected =
                        pit->second.dominantReceiver(ctx.devirtBias);
                    if (expected == vm::NO_CLASS)
                        continue;
                    const vm::MethodId target =
                        mod.prog->resolveVirtual(expected, call.aux);
                    const double bias =
                        static_cast<double>(
                            pit->second.receivers.at(expected)) /
                        static_cast<double>(pit->second.total);
                    devirtualize(caller, site.block, expected, target,
                                 ctx.assumeMonomorphic ? 1.0 : bias);
                    caller_changed = true;
                    caller_any = true;
                    changed = true;
                    break;  // block list changed; re-scan
                }
                // Static call: splice if the callee fits the budget.
                const vm::MethodId callee_id = call.aux;
                if (callee_id == mid)
                    continue;       // no self-inlining
                auto fit = mod.funcs.find(callee_id);
                if (fit == mod.funcs.end())
                    continue;
                const Function &callee = fit->second;
                if (!callee.regions.empty())
                    continue;       // never inline formed regions
                const int callee_size = callee.countInstrs();
                int limit = ctx.inlineCalleeLimit;
                if (ctx.partialInlineLimit > limit &&
                    isEncapsulatable(callee, ctx)) {
                    limit = ctx.partialInlineLimit;
                }
                if (callee_size > limit)
                    continue;
                if (ctx.refusePolymorphicCallees &&
                    hasPolymorphicSite(callee, ctx)) {
                    continue;
                }
                if (grown + callee_size > ctx.inlineGrowthLimit)
                    continue;
                spliceInline(caller, callee, site.block);
                grown = caller.countInstrs() - initial_size;
                caller_changed = true;
                caller_any = true;
                changed = true;
                break;      // re-scan with fresh block ids
            }
        }
        if (caller_any) {
            caller.compact();
            if (touched != nullptr)
                touched->push_back(mid);
        }
    }
    return changed;
}

} // namespace aregion::opt
