/**
 * @file
 * Trace-driven out-of-order timing model.
 *
 * Consumes the functional simulator's uop trace and models the
 * first-order performance effects the paper measures: issue width,
 * window/ROB occupancy, data-dependence latencies, branch
 * misprediction penalties, serializing operations, the memory
 * hierarchy, and — crucially — the cost of the atomic-region
 * primitives under the three hardware implementations of Figure 9
 * (checkpoint substrate, 20-cycle aregion_begin stall, and
 * single-in-flight regions).
 */

#ifndef AREGION_HW_TIMING_HH
#define AREGION_HW_TIMING_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "hw/branch_predictor.hh"
#include "hw/cache.hh"
#include "hw/trace.hh"

namespace aregion::failpoint {
class Failpoint;
} // namespace aregion::failpoint

namespace aregion::hw {

/** Microarchitectural parameters (Table 1 defaults). */
struct TimingConfig
{
    std::string name = "4-wide OOO";

    int width = 4;              ///< rename/issue/retire
    int robSize = 128;          ///< instruction window
    int schedWindow = 64;       ///< scheduling window
    int mispredictPenalty = 20;

    /** Atomic-primitive implementation (Figure 9). */
    enum class RegionImpl { Checkpoint, StallBegin, SingleInflight };
    RegionImpl regionImpl = RegionImpl::Checkpoint;
    int beginStallCycles = 20;

    /** Memory hierarchy (line = 64B = 8 words). */
    int lineWords = 8;
    int l1Lines = 512;          ///< 32 KB
    int l1Assoc = 4;
    int l2Lines = 65536;        ///< 4 MB
    int l2Assoc = 8;
    int l1Latency = 4;
    int l2Latency = 20;
    int memLatency = 400;       ///< 100 ns at 4 GHz
    bool prefetcher = true;

    /**
     * Leakage-observer mode (off by default; Guarnieri et al.'s
     * observation that architecturally-invisible aborted work still
     * leaves microarchitectural traces). When on, the model records
     * the cache-line and branch-predictor footprint of every
     * *discarded* (aborted) region attempt, diffs it against the
     * footprint of the committed replay of the same region, and
     * flags regions whose aborted work touched state the committed
     * path never touches (`timing.leak.*` telemetry,
     * TimingModel::leakReport). Observation only: enabling it never
     * changes a modelled latency, and disabled runs skip every hook
     * behind one dead branch.
     */
    bool leakObserver = false;

    /** Latencies by class. */
    int mulLatency = 3;
    int divLatency = 20;
    int serialLatency = 6;      ///< CAS / locked ops

    /**
     * Initial value for every cycle-state field (testing knob).
     * The model is shift-invariant — no component consumes absolute
     * cycle values — so a run started near 2^32 must reproduce the
     * zero-start run exactly, just offset, while forcing the 32-bit
     * ring offsets through rebaseRings almost immediately. The
     * stress tests use this to exercise the rebase path; leave at 0
     * otherwise.
     */
    uint64_t startCycle = 0;

    static TimingConfig baseline();            ///< Table 1
    static TimingConfig stallBegin();          ///< Figure 9 middle
    static TimingConfig singleInflight();      ///< Figure 9 right
    static TimingConfig twoWide();             ///< Section 6.3
    static TimingConfig twoWideHalf();         ///< Section 6.3
};

/** The model; plug it into a Machine as the TraceSink. */
class TimingModel : public TraceSink
{
  public:
    explicit TimingModel(const TimingConfig &config);

    void uop(const TraceUop &u) override { processUop(u); }

    /** Batched delivery: one virtual dispatch per machine flush, a
     *  plain loop over the non-virtual per-uop model inside. */
    void uopBatch(const TraceUop *u, size_t n) override
    {
        for (size_t i = 0; i < n; ++i)
            processUop(u[i]);
    }

    void abortFlush(const AbortEvent &event) override;
    void marker(int64_t id) override;

    /** Total cycles to retire everything seen so far. */
    uint64_t cycles() const { return lastRetire; }

    uint64_t uopCount = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    /** Correctly-predicted branches flipped to mispredicts by the
     *  timing.mispredict failpoint (not included in `mispredicts`). */
    uint64_t injectedMispredicts = 0;
    uint64_t indirects = 0;
    uint64_t indirectMispredicts = 0;
    uint64_t serializations = 0;
    uint64_t regionBegins = 0;
    uint64_t abortFlushes = 0;

    /** Dispatch-stall attribution: uops whose dispatch was delayed,
     *  bucketed by the dominant gate (`timing.stall.*` keys). */
    uint64_t stallRob = 0;          ///< ROB occupancy
    uint64_t stallSched = 0;        ///< scheduling-window distance
    uint64_t stallFetch = 0;        ///< mispredict/abort redirect
    uint64_t stallSerial = 0;       ///< serialization / store drain
    uint64_t stallRegion = 0;       ///< degraded aregion_begin impls

    /** Times rebaseRings ran (ring-offset origin advanced). */
    uint64_t ringRebases = 0;

    /** Mirror the model's counters into the process-wide telemetry
     *  registry (`timing.*` keys). Call once per finished run. */
    void publishTelemetry() const;

    uint64_t l1Misses() const { return caches.l1Misses(); }
    uint64_t l2Misses() const { return caches.l2Misses(); }

    /** Cycle counter value at each marker crossing. */
    std::vector<std::pair<int64_t, uint64_t>> markerCycles;

    /** Leakage verdict for one static region (leakObserver mode). */
    struct RegionLeak
    {
        int regionId = -1;
        uint64_t abortedAttempts = 0;
        /** Cache lines / predictor entries touched by discarded
         *  uops but by no committed execution of the region — the
         *  input-dependent residue an observer could probe. */
        std::vector<uint64_t> leakedLines;
        std::vector<size_t> leakedBranchEntries;

        bool leaky() const
        {
            return !leakedLines.empty() ||
                   !leakedBranchEntries.empty();
        }
    };

    /** Diff every aborted region's discarded footprint against its
     *  committed footprint (leakObserver mode; empty otherwise).
     *  Sorted by region id. */
    std::vector<RegionLeak> leakReport() const;

  private:
    void processUop(const TraceUop &u);
    uint64_t historyComplete(uint64_t seq) const;

    /** Advance ringBase so `anchor - ringBase` fits in 32 bits,
     *  shifting every stored ring offset to the new origin. */
    void rebaseRings(uint64_t anchor);

    TimingConfig cfg;
    BranchPredictor predictor;
    CacheHierarchy caches;

    /** timing.mispredict failpoint handle, resolved at construction;
     *  nullptr (one dead branch per conditional branch) when unarmed. */
    failpoint::Failpoint *fpMispredict = nullptr;

    static constexpr size_t HIST = 8192;
    /** Completion/retire cycles of the last HIST uops, stored as
     *  32-bit offsets from ringBase so both rings together occupy
     *  64 KB of host memory instead of 128 KB — the dependence-wakeup
     *  lookups into completeRing are the model's hottest random
     *  memory traffic. ringBase is rebased roughly every 2^31 cycles
     *  (rebaseRings), which keeps live offsets exact: values still
     *  reachable by any read sit within a few million cycles of the
     *  current dispatch cycle, while the origin trails it by 2^31. */
    std::vector<uint32_t> completeRing;     ///< seq % HIST -> cycle
    std::vector<uint32_t> retireRing;       ///< seq % HIST -> cycle
    uint64_t ringBase = 0;

    uint64_t dispatchCycle = 0;
    int dispatchedInCycle = 0;
    uint64_t retireCycle = 0;
    int retiredInCycle = 0;
    uint64_t fetchResumeAt = 0;
    uint64_t serialGate = 0;
    uint64_t maxComplete = 0;
    uint64_t maxStoreComplete = 0;
    uint64_t lastUopComplete = 0;
    uint64_t lastRetire = 0;
    uint64_t lastRegionEndRetire = 0;
    bool regionOpen = false;

    /** Leakage-observer state (dead unless cfg.leakObserver). A
     *  footprint is the set of cache lines and gshare entries an
     *  execution touched. The attempt footprint accumulates while a
     *  region is open; End folds it into the region's committed
     *  footprint, abortFlush into its discarded footprint and opens
     *  a replay window: the next `discardedUops` uops outside any
     *  region are the non-speculative alternate path re-doing the
     *  aborted work, i.e. the committed replay to diff against. */
    struct LeakFootprint
    {
        std::set<uint64_t> lines;
        std::set<size_t> branchEntries;

        void
        merge(const LeakFootprint &o)
        {
            lines.insert(o.lines.begin(), o.lines.end());
            branchEntries.insert(o.branchEntries.begin(),
                                 o.branchEntries.end());
        }
    };
    void leakObserve(const TraceUop &u);

    bool leakOn = false;
    int curRegionId = -1;
    LeakFootprint attemptFp;
    std::map<int, LeakFootprint> discardedFp;
    std::map<int, LeakFootprint> committedFp;
    std::map<int, uint64_t> abortedAttempts;
    int replayRegion = -1;
    uint64_t replayRemaining = 0;
};

} // namespace aregion::hw

#endif // AREGION_HW_TIMING_HH
