#include "hw/bisim.hh"

#include <sstream>

#include "vm/arith.hh"
#include "vm/layout.hh"

namespace aregion::hw {

namespace layout = vm::layout;
using vm::Trap;
using vm::TrapKind;

const char *
BisimOracle::stopName(Stop stop)
{
    switch (stop) {
      case Stop::Horizon: return "horizon";
      case Stop::FrameReturn: return "frame-return";
      case Stop::CallBoundary: return "call-boundary";
      case Stop::RegionEntry: return "region-entry";
      case Stop::RegionEnd: return "region-end";
      case Stop::ExplicitAbort: return "explicit-abort";
      case Stop::Trapped: return "trapped";
      case Stop::Blocked: return "blocked";
      case Stop::BadMonitor: return "bad-monitor";
      case Stop::Spawned: return "spawned";
      case Stop::WildStore: return "wild-store";
      case Stop::BadPc: return "bad-pc";
    }
    return "<bad>";
}

bool
BisimOracle::HeapView::inBounds(uint64_t addr) const
{
    // Fresh allocations (beyond the frozen watermark) are mapped too.
    return base.inBounds(addr) ||
           (addr >= base.allocMark() && addr < allocPtr);
}

int64_t
BisimOracle::HeapView::load(uint64_t addr) const
{
    auto it = writes.find(addr);
    if (it != writes.end())
        return it->second;
    // Words allocated by this replay but never written read as zero
    // (the machine's bump allocator hands out zeroed memory), even
    // where the base image still holds stale abandoned-region bytes.
    if (addr >= base.allocMark() && addr < allocPtr)
        return 0;
    return base.load(addr);
}

void
BisimOracle::HeapView::store(uint64_t addr, int64_t value)
{
    writes[addr] = value;
}

uint64_t
BisimOracle::HeapView::alloc(uint64_t words)
{
    const uint64_t addr = allocPtr;
    allocPtr += words;
    return addr;
}

void
BisimOracle::setReplayInfo(uint64_t seed, std::string command)
{
    replayValid = true;
    replaySeed = seed;
    replayCommand = std::move(command);
}

void
BisimOracle::report(int ctx_id, std::string what)
{
    if (found.size() >= cfg.maxReports) {
        ++suppressedCount;
        return;
    }
    if (replayValid) {
        std::ostringstream os;
        os << " [seed=" << replaySeed << " ctx=" << ctx_id
           << "; replay: " << replayCommand << "]";
        what += os.str();
    }
    found.push_back({ctx_id, std::move(what)});
}

BisimOracle::ReplayResult
BisimOracle::replay(int ctx_id, const MachineFunction &fn,
                    std::vector<int64_t> regs, int pc,
                    const vm::Heap &heap)
{
    namespace arith = vm::arith;

    ++replayCount;
    ReplayResult res;
    res.regs = std::move(regs);
    res.pc = pc;

    HeapView view(heap);

    auto reg = [&](MReg r) -> int64_t & {
        return res.regs[static_cast<size_t>(r)];
    };
    auto emit = [&](ObsEvent::Kind kind, uint64_t a, int64_t b) {
        res.events.push_back({kind, a, b});
    };
    auto doStore = [&](uint64_t addr, int64_t value) -> bool {
        if (!view.inBounds(addr))
            return false;
        view.store(addr, value);
        emit(ObsEvent::Kind::Store, addr, value);
        return true;
    };
    auto doLoad = [&](uint64_t addr) -> int64_t {
        if (!view.inBounds(addr)) {
            // The machine asserts on non-speculative wild loads;
            // the replay records the address as an observable and
            // reads zero so both legs keep comparable traces.
            emit(ObsEvent::Kind::WildLoad, addr, 0);
            return 0;
        }
        return view.load(addr);
    };
    auto finish = [&](Stop stop) -> ReplayResult & {
        res.stop = stop;
        res.allocPtr = view.allocPtr;
        replayedUopCount += res.uops;
        return res;
    };
    auto trapAt = [&](TrapKind kind, const MUop &uop) {
        res.trap.emplace(kind, uop.bcMethod, uop.bcPc);
    };

    while (true) {
        if (res.uops >= cfg.horizonUops)
            return finish(Stop::Horizon);
        if (res.pc < 0 ||
            res.pc >= static_cast<int>(fn.code.size())) {
            return finish(Stop::BadPc);
        }
        const MUop &uop = fn.code[static_cast<size_t>(res.pc)];

        // Register-file boundaries: the compiler never emits a uop
        // whose regs are out of range, but the replayer must not
        // trust the state the machine handed it.
        for (MReg r : uop.srcs) {
            if (r < 0 ||
                static_cast<size_t>(r) >= res.regs.size()) {
                return finish(Stop::BadPc);
            }
        }

        switch (uop.kind) {
          case MKind::Ret:
            return finish(Stop::FrameReturn);
          case MKind::CallDirect:
          case MKind::CallIndirect:
            return finish(Stop::CallBoundary);
          case MKind::ABegin:
            return finish(Stop::RegionEntry);
          case MKind::AEnd:
            return finish(Stop::RegionEnd);
          case MKind::AAbort:
            return finish(Stop::ExplicitAbort);
          case MKind::Spawn:
            return finish(Stop::Spawned);
          default:
            break;
        }

        ++res.uops;
        int next_pc = res.pc + 1;

        switch (uop.kind) {
          case MKind::Imm:
            reg(uop.dst) = uop.imm;
            break;
          case MKind::Mov:
            reg(uop.dst) = reg(uop.srcs[0]);
            break;
          case MKind::Alu: {
            const int64_t a = reg(uop.srcs[0]);
            const int64_t b = reg(uop.srcs[1]);
            int64_t out = 0;
            switch (uop.alu) {
              case AluOp::Add: out = arith::javaAdd(a, b); break;
              case AluOp::Sub: out = arith::javaSub(a, b); break;
              case AluOp::Mul: out = arith::javaMul(a, b); break;
              case AluOp::Div:
                if (b == 0) {
                    trapAt(TrapKind::DivideByZero, uop);
                    return finish(Stop::Trapped);
                }
                out = arith::javaDiv(a, b);
                break;
              case AluOp::Rem:
                if (b == 0) {
                    trapAt(TrapKind::DivideByZero, uop);
                    return finish(Stop::Trapped);
                }
                out = arith::javaRem(a, b);
                break;
              case AluOp::And: out = a & b; break;
              case AluOp::Or: out = a | b; break;
              case AluOp::Xor: out = a ^ b; break;
              case AluOp::Shl: out = arith::javaShl(a, b); break;
              case AluOp::Shr: out = arith::javaShr(a, b); break;
              case AluOp::CmpEq: out = a == b; break;
              case AluOp::CmpNe: out = a != b; break;
              case AluOp::CmpLt: out = a < b; break;
              case AluOp::CmpLe: out = a <= b; break;
              case AluOp::CmpGt: out = a > b; break;
              case AluOp::CmpGe: out = a >= b; break;
              case AluOp::CmpULt:
                out = static_cast<uint64_t>(a) <
                      static_cast<uint64_t>(b);
                break;
            }
            reg(uop.dst) = out;
            break;
          }

          case MKind::Load: {
            const int64_t base_ref = reg(uop.srcs[0]);
            if (base_ref == 0) {
                trapAt(TrapKind::NullPointer, uop);
                return finish(Stop::Trapped);
            }
            uint64_t addr = static_cast<uint64_t>(base_ref) +
                            static_cast<uint64_t>(uop.imm);
            if (uop.srcs.size() > 1)
                addr += static_cast<uint64_t>(reg(uop.srcs[1]));
            reg(uop.dst) = doLoad(addr);
            break;
          }
          case MKind::Store: {
            const int64_t base_ref = reg(uop.srcs[0]);
            if (base_ref == 0) {
                trapAt(TrapKind::NullPointer, uop);
                return finish(Stop::Trapped);
            }
            uint64_t addr = static_cast<uint64_t>(base_ref) +
                            static_cast<uint64_t>(uop.imm);
            if (uop.srcs.size() > 2)
                addr += static_cast<uint64_t>(reg(uop.srcs[1]));
            if (!doStore(addr, reg(uop.srcs.back())))
                return finish(Stop::WildStore);
            break;
          }

          case MKind::Br: {
            const bool cond = reg(uop.srcs[0]) != 0;
            const bool take = uop.brIfZero ? !cond : cond;
            if (take)
                next_pc = uop.target;
            break;
          }
          case MKind::Jmp:
            next_pc = uop.target;
            break;

          case MKind::Cas: {
            const int64_t base_ref = reg(uop.srcs[0]);
            if (base_ref == 0) {
                trapAt(TrapKind::NullPointer, uop);
                return finish(Stop::Trapped);
            }
            const uint64_t addr = static_cast<uint64_t>(base_ref) +
                                  static_cast<uint64_t>(uop.imm);
            const int64_t old = doLoad(addr);
            if (old == 0) {
                if (!doStore(addr, reg(uop.srcs[1])))
                    return finish(Stop::WildStore);
            }
            reg(uop.dst) = old;
            break;
          }
          case MKind::TidWord:
            reg(uop.dst) = layout::lockWord(ctx_id, 1);
            break;
          case MKind::LockSlow: {
            const int64_t obj_ref = reg(uop.srcs[0]);
            if (obj_ref == 0) {
                trapAt(TrapKind::NullPointer, uop);
                return finish(Stop::Trapped);
            }
            const uint64_t lock_addr =
                static_cast<uint64_t>(obj_ref) + layout::HDR_LOCK;
            const int64_t word = doLoad(lock_addr);
            const int owner = layout::lockOwner(word);
            if (owner == -1) {
                if (!doStore(lock_addr, layout::lockWord(ctx_id, 1)))
                    return finish(Stop::WildStore);
            } else if (owner == ctx_id) {
                if (!doStore(lock_addr,
                             layout::lockWord(
                                 ctx_id,
                                 layout::lockDepth(word) + 1))) {
                    return finish(Stop::WildStore);
                }
            } else {
                // The real machine would park the context here; the
                // replay stops (the scheduler's interleaving past
                // this point is not the replayer's to predict).
                return finish(Stop::Blocked);
            }
            break;
          }
          case MKind::UnlockSlow: {
            const int64_t obj_ref = reg(uop.srcs[0]);
            if (obj_ref == 0) {
                trapAt(TrapKind::NullPointer, uop);
                return finish(Stop::Trapped);
            }
            const uint64_t lock_addr =
                static_cast<uint64_t>(obj_ref) + layout::HDR_LOCK;
            const int64_t word = doLoad(lock_addr);
            if (layout::lockOwner(word) != ctx_id)
                return finish(Stop::BadMonitor);
            const int64_t depth = layout::lockDepth(word) - 1;
            if (!doStore(lock_addr,
                         depth == 0 ? 0
                                    : layout::lockWord(ctx_id,
                                                       depth))) {
                return finish(Stop::WildStore);
            }
            break;
          }

          case MKind::Alloc: {
            uint64_t addr;
            int64_t words;
            if (uop.imm == 0) {
                const int fields = heap.fieldCount(uop.aux);
                words = layout::OBJ_FIELD_BASE + fields;
                addr = view.alloc(static_cast<uint64_t>(words));
                emit(ObsEvent::Kind::Alloc, addr, words);
                if (!doStore(addr + layout::HDR_CLASS, uop.aux))
                    return finish(Stop::WildStore);
            } else {
                const int64_t len = reg(uop.srcs[0]);
                if (len < 0) {
                    trapAt(TrapKind::NegativeArraySize, uop);
                    return finish(Stop::Trapped);
                }
                words = layout::ARR_ELEM_BASE + len;
                addr = view.alloc(static_cast<uint64_t>(words));
                emit(ObsEvent::Kind::Alloc, addr, words);
                if (!doStore(addr + layout::HDR_CLASS,
                             layout::ARRAY_CLASS) ||
                    !doStore(addr + layout::ARR_LEN, len)) {
                    return finish(Stop::WildStore);
                }
            }
            reg(uop.dst) = static_cast<int64_t>(addr);
            break;
          }

          case MKind::YieldLoad:
            reg(uop.dst) = doLoad(heap.yieldFlagAddr(ctx_id));
            break;

          case MKind::Print:
            emit(ObsEvent::Kind::Print, 0, reg(uop.srcs[0]));
            break;
          case MKind::Marker:
            emit(ObsEvent::Kind::Marker, 0, uop.imm);
            break;

          case MKind::Trap:
            trapAt(static_cast<TrapKind>(uop.aux), uop);
            return finish(Stop::Trapped);

          case MKind::Nop:
            break;

          // Handled by the boundary switch above.
          case MKind::Ret:
          case MKind::CallDirect:
          case MKind::CallIndirect:
          case MKind::Spawn:
          case MKind::ABegin:
          case MKind::AEnd:
          case MKind::AAbort:
            break;
        }

        res.pc = next_pc;
    }
}

void
BisimOracle::compare(int ctx_id, const MachineFunction &fn,
                     AbortCause cause,
                     const ReplayResult &from_checkpoint,
                     const ReplayResult &from_post_abort)
{
    auto prefix = [&](std::ostringstream &os) -> std::ostringstream & {
        os << "bisimulation (" << fn.name << ", abort cause "
           << abortCauseName(cause) << "): ";
        return os;
    };

    if (from_checkpoint.stop != from_post_abort.stop) {
        std::ostringstream os;
        prefix(os) << "replay from checkpoint stopped at "
                   << stopName(from_checkpoint.stop)
                   << " but replay from post-abort state stopped at "
                   << stopName(from_post_abort.stop);
        report(ctx_id, os.str());
        return;
    }
    if (from_checkpoint.uops != from_post_abort.uops) {
        std::ostringstream os;
        prefix(os) << "replay lengths differ: " << from_checkpoint.uops
                   << " uops from checkpoint, " << from_post_abort.uops
                   << " from post-abort state";
        report(ctx_id, os.str());
    }
    if (from_checkpoint.pc != from_post_abort.pc) {
        std::ostringstream os;
        prefix(os) << "final pc differs: " << from_checkpoint.pc
                   << " from checkpoint, " << from_post_abort.pc
                   << " from post-abort state";
        report(ctx_id, os.str());
    }
    if (from_checkpoint.allocPtr != from_post_abort.allocPtr) {
        std::ostringstream os;
        prefix(os) << "allocation watermark differs: "
                   << from_checkpoint.allocPtr << " from checkpoint, "
                   << from_post_abort.allocPtr
                   << " from post-abort state";
        report(ctx_id, os.str());
    }

    const bool ck_trap = from_checkpoint.trap.has_value();
    const bool pa_trap = from_post_abort.trap.has_value();
    if (ck_trap != pa_trap) {
        std::ostringstream os;
        prefix(os) << "trap identity differs: "
                   << (ck_trap
                           ? vm::trapName(from_checkpoint.trap->kind)
                           : "none")
                   << " from checkpoint, "
                   << (pa_trap
                           ? vm::trapName(from_post_abort.trap->kind)
                           : "none")
                   << " from post-abort state";
        report(ctx_id, os.str());
    } else if (ck_trap) {
        const vm::Trap &a = *from_checkpoint.trap;
        const vm::Trap &b = *from_post_abort.trap;
        if (a.kind != b.kind || a.method != b.method || a.pc != b.pc) {
            std::ostringstream os;
            prefix(os) << "trap identity differs: "
                       << vm::trapName(a.kind) << " at method "
                       << a.method << " pc " << a.pc
                       << " from checkpoint vs " << vm::trapName(b.kind)
                       << " at method " << b.method << " pc " << b.pc
                       << " from post-abort state";
            report(ctx_id, os.str());
        }
    }

    if (from_checkpoint.regs.size() != from_post_abort.regs.size()) {
        std::ostringstream os;
        prefix(os) << "register file size differs: "
                   << from_checkpoint.regs.size()
                   << " from checkpoint, "
                   << from_post_abort.regs.size()
                   << " from post-abort state";
        report(ctx_id, os.str());
    } else {
        for (size_t r = 0; r < from_checkpoint.regs.size(); ++r) {
            if (from_checkpoint.regs[r] == from_post_abort.regs[r])
                continue;
            std::ostringstream os;
            prefix(os) << "register r" << r
                       << " differs at the replay horizon: "
                       << from_checkpoint.regs[r]
                       << " from checkpoint, "
                       << from_post_abort.regs[r]
                       << " from post-abort state";
            report(ctx_id, os.str());
        }
    }

    const size_t n = std::min(from_checkpoint.events.size(),
                              from_post_abort.events.size());
    for (size_t i = 0; i < n; ++i) {
        const ObsEvent &a = from_checkpoint.events[i];
        const ObsEvent &b = from_post_abort.events[i];
        if (a == b)
            continue;
        std::ostringstream os;
        prefix(os) << "observable event " << i
                   << " differs: kind " << static_cast<int>(a.kind)
                   << " (" << a.a << ", " << a.b
                   << ") from checkpoint vs kind "
                   << static_cast<int>(b.kind) << " (" << b.a << ", "
                   << b.b << ") from post-abort state";
        report(ctx_id, os.str());
        return;
    }
    if (from_checkpoint.events.size() !=
        from_post_abort.events.size()) {
        std::ostringstream os;
        prefix(os) << "observable event counts differ: "
                   << from_checkpoint.events.size()
                   << " from checkpoint, "
                   << from_post_abort.events.size()
                   << " from post-abort state";
        report(ctx_id, os.str());
    }
}

void
BisimOracle::checkAbort(int ctx_id, int method,
                        const std::vector<int64_t> &checkpoint_regs,
                        int alt_pc,
                        const std::vector<int64_t> &post_regs,
                        int post_pc, const vm::Heap &heap,
                        AbortCause cause)
{
    ++checkCount;
    const MachineFunction &fn = mp.func(method);

    const ReplayResult from_checkpoint =
        replay(ctx_id, fn, checkpoint_regs, alt_pc, heap);
    const ReplayResult from_post_abort =
        replay(ctx_id, fn, post_regs, post_pc, heap);

    compare(ctx_id, fn, cause, from_checkpoint, from_post_abort);
}

} // namespace aregion::hw
