#include "hw/cache.hh"

#include <bit>

#include "support/logging.hh"

namespace aregion::hw {

Cache::Cache(int num_lines, int assoc_)
    : assoc(assoc_), numSets(num_lines / assoc_),
      ways(static_cast<size_t>(num_lines))
{
    AREGION_ASSERT(num_lines % assoc_ == 0, "lines not divisible");
    AREGION_ASSERT(numSets > 0, "empty cache");
    const auto sets = static_cast<uint64_t>(numSets);
    setsPow2 = (sets & (sets - 1)) == 0;
    setMask = sets - 1;
}

bool
Cache::access(uint64_t line)
{
    ++clock;
    const size_t set = setOf(line);
    Way *lru = nullptr;
    for (int w = 0; w < assoc; ++w) {
        Way &way = ways[set * static_cast<size_t>(assoc) +
                        static_cast<size_t>(w)];
        if (way.line == line) {
            way.lastUse = clock;
            ++hits;
            return true;
        }
        if (!lru || way.lastUse < lru->lastUse)
            lru = &way;
    }
    ++misses;
    lru->line = line;
    lru->lastUse = clock;
    return false;
}

void
Cache::install(uint64_t line)
{
    ++clock;
    const size_t set = setOf(line);
    Way *lru = nullptr;
    for (int w = 0; w < assoc; ++w) {
        Way &way = ways[set * static_cast<size_t>(assoc) +
                        static_cast<size_t>(w)];
        if (way.line == line) {
            way.lastUse = clock;
            return;
        }
        if (!lru || way.lastUse < lru->lastUse)
            lru = &way;
    }
    lru->line = line;
    lru->lastUse = clock;
}

CacheHierarchy::CacheHierarchy(int l1_lines, int l1_assoc,
                               int l2_lines, int l2_assoc, int l1_lat,
                               int l2_lat, int mem_lat, bool prefetch_)
    : l1(l1_lines, l1_assoc), l2(l2_lines, l2_assoc), l1Lat(l1_lat),
      l2Lat(l2_lat), memLat(mem_lat), prefetch(prefetch_)
{
}

int
CacheHierarchy::accessLatency(uint64_t word_addr, int line_words)
{
    const uint64_t line = lineOf(word_addr, line_words);
    if (l1.access(line))
        return l1Lat;
    // Stream prefetch: a second consecutive miss line pulls the next
    // line into both levels.
    if (prefetch) {
        if (line == lastMissLine + 1) {
            l1.install(line + 1);
            l2.install(line + 1);
        }
        lastMissLine = line;
    }
    if (l2.access(line))
        return l2Lat;
    return memLat;
}

} // namespace aregion::hw
