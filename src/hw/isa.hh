/**
 * @file
 * The machine instruction set, including the paper's three atomic
 * execution primitives (Section 3.2):
 *
 *   aregion_begin <alt PC>  (MKind::ABegin, target = alternate pc)
 *   aregion_end             (MKind::AEnd)
 *   aregion_abort           (MKind::AAbort)
 *
 * Abort causes are exposed to software through two registers modeled
 * as fields of the abort event: the cause and the pc of the
 * responsible instruction, which the runtime maps back to the
 * compiler's assert ids for adaptive recompilation.
 *
 * Machine code is a flat list of uops per method; the global pc of a
 * uop is (methodId << 16 | offset), which the branch predictor and
 * the diagnosis registers use.
 */

#ifndef AREGION_HW_ISA_HH
#define AREGION_HW_ISA_HH

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "vm/program.hh"

namespace aregion::hw {

/** Machine register index (virtual; frames are register files). */
using MReg = int;
constexpr MReg NO_MREG = -1;

/**
 * Source-operand list of a uop. Up to four registers — every uop
 * shape except long call-argument lists — live inline in the MUop
 * itself, so the executor's operand fetch reads the uop's own cache
 * line instead of chasing a per-uop heap allocation. Longer lists
 * spill to an owned heap array. Same 24-byte footprint as the
 * std::vector<MReg> it replaces.
 */
class SrcList
{
  public:
    SrcList() = default;
    SrcList(std::initializer_list<MReg> regs)
    {
        for (MReg r : regs)
            push_back(r);
    }
    SrcList(const std::vector<MReg> &regs)
    {
        for (MReg r : regs)
            push_back(r);
    }
    SrcList(const SrcList &o) { copyFrom(o); }
    SrcList(SrcList &&o) noexcept { stealFrom(o); }

    SrcList &
    operator=(const SrcList &o)
    {
        if (this != &o) {
            clear();
            copyFrom(o);
        }
        return *this;
    }

    SrcList &
    operator=(SrcList &&o) noexcept
    {
        if (this != &o) {
            clear();
            stealFrom(o);
        }
        return *this;
    }

    SrcList &
    operator=(const std::vector<MReg> &regs)
    {
        clear();
        for (MReg r : regs)
            push_back(r);
        return *this;
    }

    ~SrcList() { clear(); }

    void
    push_back(MReg r)
    {
        if (count < INLINE) {
            inl[count++] = r;
            return;
        }
        if (count == INLINE) {
            // First spill: move the inline regs to a heap array.
            MReg *arr = new MReg[2 * INLINE];
            std::copy(inl, inl + INLINE, arr);
            spill.arr = arr;
            spill.cap = 2 * INLINE;
        } else if (count == spill.cap) {
            MReg *arr = new MReg[2 * spill.cap];
            std::copy(spill.arr, spill.arr + count, arr);
            delete[] spill.arr;
            spill.arr = arr;
            spill.cap *= 2;
        }
        spill.arr[count++] = r;
    }

    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    const MReg *data() const { return count <= INLINE ? inl : spill.arr; }
    const MReg *begin() const { return data(); }
    const MReg *end() const { return data() + count; }
    MReg operator[](size_t i) const { return data()[i]; }
    MReg back() const { return data()[count - 1]; }

  private:
    static constexpr uint32_t INLINE = 4;

    struct Spill
    {
        MReg *arr;
        uint32_t cap;
    };

    void
    clear()
    {
        if (count > INLINE)
            delete[] spill.arr;
        count = 0;
    }

    void
    copyFrom(const SrcList &o)
    {
        count = o.count;
        if (count > INLINE) {
            spill.arr = new MReg[o.spill.cap];
            spill.cap = o.spill.cap;
            std::copy(o.spill.arr, o.spill.arr + count, spill.arr);
        } else {
            std::copy(o.inl, o.inl + count, inl);
        }
    }

    void
    stealFrom(SrcList &o)
    {
        count = o.count;
        if (count > INLINE) {
            spill = o.spill;
            o.count = 0;
        } else {
            std::copy(o.inl, o.inl + count, inl);
        }
    }

    union {
        MReg inl[INLINE];
        Spill spill;
    };
    uint32_t count = 0;
};

/** ALU operation for MKind::Alu. */
enum class AluOp : uint8_t {
    Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
    CmpULt,     ///< unsigned < (single-uop bounds checks)
};

/** Machine opcode. */
enum class MKind : uint8_t {
    Imm,        ///< dst = imm
    Mov,        ///< dst = s0
    Alu,        ///< dst = s0 alu s1 (Div/Rem trap on zero divisor)
    Load,       ///< dst = mem[s0 + imm (+ s1)]
    Store,      ///< mem[s0 + imm (+ s1 when 3 srcs)] = last src
    Br,         ///< if s0 (!= 0, or == 0 when brIfZero) goto target
    Jmp,        ///< goto target
    CallDirect, ///< aux = callee method; srcs = args
    CallIndirect,///< s0 holds callee method id; srcs[1..] = args
    Ret,        ///< return s0 (if present)
    Cas,        ///< dst = mem[s0+imm]; if dst==s1 store s2; serializing
    TidWord,    ///< dst = lock word (current thread, depth 1)
    LockSlow,   ///< contended/recursive monitor enter on s0; blocking
    UnlockSlow, ///< recursive monitor exit on s0
    Alloc,      ///< dst = new object (aux=class) or array (s0=len)
    YieldLoad,  ///< dst = own safepoint flag (a real load)
    Print,      ///< emit s0 to the observable output
    Marker,     ///< sampling marker, id = imm
    Spawn,      ///< start thread at method aux with args = srcs
    Trap,       ///< raise trap aux (TrapKind); aborts active region
    /**
     * `aregion_begin <alt pc>` (paper Section 3): checkpoint the
     * register state and enter atomic execution for static region
     * `aux`. All stores are buffered (L1-line write set) and all
     * loads tracked (read set) until AEnd commits or an abort rolls
     * everything back and redirects fetch to `target`, the
     * non-speculative alternate path. On the paper's checkpoint
     * substrate this uop is free; TimingConfig::stallBegin() and
     * ::singleInflight() model the degraded Figure 9 variants.
     * Nesting is flattened (Section 3: a nested begin is a no-op).
     */
    ABegin,
    /**
     * `aregion_end` (paper Section 3): commit — atomically publish
     * the buffered write set and leave speculative execution. The
     * read/write-set occupancy at this instant feeds the
     * `machine.region.{read,write}_lines` telemetry (Section 6.2's
     * footprint analysis).
     */
    AEnd,
    /**
     * `aregion_abort` (paper Sections 3–4): explicitly discard the
     * region. The compiler plants it on cold edges it converted to
     * asserts (`aux` = assert id, exposed to the adaptive
     * recompiler through the abort-PC register, Section 7); rolls
     * back to the checkpoint and resumes at the ABegin's alternate
     * pc with AbortCause::Explicit recorded.
     */
    AAbort,
    Nop,
};

const char *mkindName(MKind kind);

/** One machine uop. */
struct MUop
{
    MKind kind = MKind::Nop;
    AluOp alu = AluOp::Add;
    MReg dst = NO_MREG;
    SrcList srcs;
    int64_t imm = 0;        ///< immediate / address displacement
    int target = -1;        ///< branch/alt target (uop offset)
    int aux = 0;            ///< callee / class / region / abort / trap
    bool brIfZero = false;  ///< Br polarity

    /** Provenance for diagnosis and profiling. */
    int bcMethod = -1;
    int bcPc = -1;

    std::string toString() const;
};

/** A compiled method. */
struct MachineFunction
{
    vm::MethodId methodId = vm::NO_METHOD;
    std::string name;
    int numArgs = 0;
    int numRegs = 0;
    std::vector<MUop> code;

    /** Static regions of the originating IR (id -> abort origins). */
    std::map<int, std::map<int, std::pair<int, int>>> regionAborts;
};

/** Global pc helpers. */
constexpr uint64_t
globalPc(vm::MethodId method, int offset)
{
    return (static_cast<uint64_t>(method) << 16) |
           static_cast<uint64_t>(offset);
}

constexpr vm::MethodId
pcMethod(uint64_t pc)
{
    return static_cast<vm::MethodId>(pc >> 16);
}

constexpr int
pcOffset(uint64_t pc)
{
    return static_cast<int>(pc & 0xffff);
}

/** A whole compiled program. */
struct MachineProgram
{
    const vm::Program *prog = nullptr;
    std::map<vm::MethodId, MachineFunction> funcs;

    const MachineFunction &func(vm::MethodId m) const;

    /** Total static uop count. */
    int totalUops() const;
};

} // namespace aregion::hw

#endif // AREGION_HW_ISA_HH
