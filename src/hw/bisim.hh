/**
 * @file
 * Deopt bisimulation oracle.
 *
 * The paper's contract is stronger than "the abort restored the
 * checkpoint": an abort must be *indistinguishable from having
 * executed the region's non-speculative alternate path* — the
 * bisimulation reading of Flückiger et al.'s "abort ≡ non-speculative
 * replay" invariant (PAPERS.md). The RollbackOracle (hw/oracle.hh)
 * checks state equality at the abort point; this oracle checks the
 * behavioural claim end to end.
 *
 * On every abort the machine hands over the aregion_begin checkpoint
 * (register file + alternate pc) and the post-abort state (register
 * file + resumed pc). The oracle then re-executes the alternate path
 * *non-speculatively* from both states with its own MUop replayer —
 * independent of Machine::execute, so a machine bug cannot hide in
 * the oracle — over copy-on-write views of the abort-time heap, up to
 * a bounded horizon (uop budget, frame return, next region entry,
 * trap, blocking monitor, spawn). The two replays must produce
 * identical observable traces:
 *
 *   - every heap effect (stores, in order, address and value),
 *   - every I/O effect (prints, markers) and allocation,
 *   - monitor state transitions (lock-word stores),
 *   - trap identity (kind, originating bytecode method, pc),
 *   - the stop condition, final pc, final register file, and the
 *     allocation watermark.
 *
 * Register-file equality at the horizon subsumes the "dead register"
 * loophole: a rollback bug that corrupts a register the alternate
 * path never reads is still observable state (a later region entry
 * would checkpoint it), so it is still flagged.
 *
 * Cross-context soundness: the machine multiplexes contexts on one
 * host thread, so the heap at the abort instant is a consistent
 * snapshot; both replays read that frozen image through private
 * overlays and never write the real heap. This is what lets the
 * bisimulation check run on cross-context (conflict) aborts where
 * the RollbackOracle must skip its heap comparison.
 *
 * Attach with Machine::setBisimOracle (tests/fuzzing only; nullptr
 * and fully inert by default). Failures are stamped with
 * setReplayInfo coordinates exactly like the RollbackOracle's.
 */

#ifndef AREGION_HW_BISIM_HH
#define AREGION_HW_BISIM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/isa.hh"
#include "hw/oracle.hh"
#include "hw/trace.hh"
#include "vm/heap.hh"
#include "vm/trap.hh"

namespace aregion::hw {

/** Replayer knobs. */
struct BisimConfig
{
    /** Uop budget per replay; the horizon at which the two replays
     *  are compared if nothing else stops them first. */
    uint64_t horizonUops = 2048;

    /** Divergences recorded before further reports are suppressed
     *  (counted, not stored) — one planted bug otherwise floods the
     *  log with one report per subsequent abort. */
    size_t maxReports = 8;
};

class BisimOracle
{
  public:
    explicit BisimOracle(const MachineProgram &program,
                         BisimConfig config = {})
        : mp(program), cfg(config)
    {}

    /**
     * Bisimulate one abort. `checkpoint_regs`/`alt_pc` are the
     * aregion_begin checkpoint; `post_regs`/`post_pc` are the frame's
     * state after the machine's abort handler ran. Both pcs are
     * offsets into `method`'s code. Records a Divergence for any
     * observable difference between the two replays.
     */
    void checkAbort(int ctx_id, int method,
                    const std::vector<int64_t> &checkpoint_regs,
                    int alt_pc,
                    const std::vector<int64_t> &post_regs, int post_pc,
                    const vm::Heap &heap, AbortCause cause);

    /** Stamp subsequent divergences with reproduction coordinates
     *  (same contract as RollbackOracle::setReplayInfo). */
    void setReplayInfo(uint64_t seed, std::string command);

    const std::vector<Divergence> &divergences() const
    {
        return found;
    }
    uint64_t checks() const { return checkCount; }
    uint64_t replays() const { return replayCount; }
    uint64_t replayedUops() const { return replayedUopCount; }
    uint64_t suppressedReports() const { return suppressedCount; }

  private:
    /** Why a replay stopped short of (or at) the horizon. */
    enum class Stop : uint8_t {
        Horizon,        ///< uop budget exhausted
        FrameReturn,    ///< Ret executed
        CallBoundary,   ///< Call{Direct,Indirect} reached
        RegionEntry,    ///< next aregion_begin reached
        RegionEnd,      ///< aregion_end without a begin (bad path)
        ExplicitAbort,  ///< aregion_abort on the alternate path
        Trapped,        ///< safety trap raised
        Blocked,        ///< contended monitor (would block)
        BadMonitor,     ///< unlock by non-owner
        Spawned,        ///< spawn (irrevocable external effect)
        WildStore,      ///< out-of-bounds non-speculative store
        BadPc,          ///< pc fell outside the function
    };
    static const char *stopName(Stop stop);

    /** One observable effect of a replay, in program order. */
    struct ObsEvent
    {
        enum class Kind : uint8_t {
            Store,      ///< a = addr, b = value
            Print,      ///< b = value
            Marker,     ///< b = marker id
            Alloc,      ///< a = address, b = words
            WildLoad,   ///< a = addr (read as zero)
        };
        Kind kind;
        uint64_t a = 0;
        int64_t b = 0;

        bool operator==(const ObsEvent &o) const
        {
            return kind == o.kind && a == o.a && b == o.b;
        }
    };

    /** Copy-on-write view of the frozen abort-time heap. */
    struct HeapView
    {
        const vm::Heap &base;
        std::unordered_map<uint64_t, int64_t> writes;
        uint64_t allocPtr;

        explicit HeapView(const vm::Heap &heap)
            : base(heap), allocPtr(heap.allocMark())
        {}

        bool inBounds(uint64_t addr) const;
        int64_t load(uint64_t addr) const;
        void store(uint64_t addr, int64_t value);
        uint64_t alloc(uint64_t words);
    };

    struct ReplayResult
    {
        std::vector<int64_t> regs;
        int pc = 0;
        Stop stop = Stop::Horizon;
        uint64_t uops = 0;
        uint64_t allocPtr = 0;
        std::optional<vm::Trap> trap;
        std::vector<ObsEvent> events;
    };

    ReplayResult replay(int ctx_id, const MachineFunction &fn,
                        std::vector<int64_t> regs, int pc,
                        const vm::Heap &heap);
    void compare(int ctx_id, const MachineFunction &fn,
                 AbortCause cause, const ReplayResult &from_checkpoint,
                 const ReplayResult &from_post_abort);
    void report(int ctx_id, std::string what);

    const MachineProgram &mp;
    BisimConfig cfg;
    std::vector<Divergence> found;
    bool replayValid = false;
    uint64_t replaySeed = 0;
    std::string replayCommand;
    uint64_t checkCount = 0;
    uint64_t replayCount = 0;
    uint64_t replayedUopCount = 0;
    uint64_t suppressedCount = 0;
};

} // namespace aregion::hw

#endif // AREGION_HW_BISIM_HH
