/**
 * @file
 * IR -> machine code lowering.
 *
 * Notable lowerings:
 *  - safety checks become compare+branch to per-check trap stubs
 *    (BoundsCheck uses a single unsigned compare),
 *  - Assert becomes one conditional branch to an aregion_abort stub,
 *  - virtual calls become classid load + vtable load + indirect call,
 *  - monitor fast paths follow the paper's description (load, check,
 *    CAS + store at enter; load, check, store at exit) with slow-path
 *    stubs for contention and recursion,
 *  - instanceof/checkcast index the heap's subtype matrix,
 *  - aregion_begin carries its alternate pc from the region's
 *    exception edge.
 *
 * Register allocation is the identity map over virtual registers:
 * the modeled core renames registers, so register pressure is not a
 * first-order effect (the paper's Section 6.4 spill anecdote is a
 * compiler-quality observation we document rather than model).
 */

#ifndef AREGION_HW_CODEGEN_HH
#define AREGION_HW_CODEGEN_HH

#include "hw/isa.hh"
#include "ir/ir.hh"
#include "vm/heap.hh"

namespace aregion::hw {

/** Memory-layout constants codegen bakes into addresses. */
struct LayoutInfo
{
    uint64_t vtableBase = 0;
    int vtableSlots = vm::Program::maxVtableSlots;
    uint64_t subtypeBase = 0;
    int subtypeColumns = 0;

    /** Derive from a heap built for the same program. */
    static LayoutInfo fromHeap(const vm::Heap &heap);
};

/** Lower one function. */
MachineFunction lower(const ir::Function &func,
                      const LayoutInfo &layout);

/** Lower a whole module. */
MachineProgram lowerModule(const ir::Module &mod,
                           const LayoutInfo &layout);

} // namespace aregion::hw

#endif // AREGION_HW_CODEGEN_HH
