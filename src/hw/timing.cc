#include "hw/timing.hh"

#include <algorithm>

#include "support/failpoint.hh"
#include "support/logging.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"

namespace aregion::hw {

TimingConfig
TimingConfig::baseline()
{
    return {};
}

TimingConfig
TimingConfig::stallBegin()
{
    TimingConfig cfg;
    cfg.name = "chkpt + 20-cycle overhead";
    cfg.regionImpl = RegionImpl::StallBegin;
    return cfg;
}

TimingConfig
TimingConfig::singleInflight()
{
    TimingConfig cfg;
    cfg.name = "chkpt, single-inflight";
    cfg.regionImpl = RegionImpl::SingleInflight;
    return cfg;
}

TimingConfig
TimingConfig::twoWide()
{
    TimingConfig cfg;
    cfg.name = "2-wide OOO";
    cfg.width = 2;
    return cfg;
}

TimingConfig
TimingConfig::twoWideHalf()
{
    TimingConfig cfg;
    cfg.name = "2-wide half OOO";
    cfg.width = 2;
    cfg.robSize = 64;
    cfg.schedWindow = 32;
    cfg.l1Lines = 256;          // 16 KB
    cfg.l2Lines = 32768;        // 2 MB
    return cfg;
}

TimingModel::TimingModel(const TimingConfig &config)
    : cfg(config),
      caches(config.l1Lines, config.l1Assoc, config.l2Lines,
             config.l2Assoc, config.l1Latency, config.l2Latency,
             config.memLatency, config.prefetcher),
      completeRing(HIST, 0), retireRing(HIST, 0)
{
    // Shift every cycle-state register to the configured origin; the
    // rings keep base 0 so a large startCycle forces an immediate
    // rebase (see TimingConfig::startCycle).
    dispatchCycle = cfg.startCycle;
    retireCycle = cfg.startCycle;
    fetchResumeAt = cfg.startCycle;
    serialGate = cfg.startCycle;
    maxComplete = cfg.startCycle;
    maxStoreComplete = cfg.startCycle;
    lastUopComplete = cfg.startCycle;
    lastRetire = cfg.startCycle;
    lastRegionEndRetire = cfg.startCycle;
    auto &fps = failpoint::Registry::global();
    fpMispredict =
        fps.anyArmed() ? fps.find(failpoint::kTimingMispredict)
                       : nullptr;
    leakOn = cfg.leakObserver;
}

void
TimingModel::leakObserve(const TraceUop &u)
{
    if (u.region == RegionEvent::Begin) {
        curRegionId = u.regionId;
        attemptFp = LeakFootprint{};
        // A fresh attempt ends any replay window: whatever follows
        // belongs to the new speculation, not the old alternate path.
        replayRegion = -1;
        replayRemaining = 0;
        return;
    }
    if (u.region == RegionEvent::End) {
        if (curRegionId >= 0) {
            committedFp[curRegionId].merge(attemptFp);
            attemptFp = LeakFootprint{};
            curRegionId = -1;
        }
        return;
    }

    LeakFootprint *fp = nullptr;
    if (curRegionId >= 0) {
        fp = &attemptFp;
    } else if (replayRemaining > 0 && replayRegion >= 0) {
        fp = &committedFp[replayRegion];
        if (--replayRemaining == 0)
            replayRegion = -1;
    }
    if (!fp)
        return;
    if (u.isLoad || u.isStore) {
        fp->lines.insert(
            CacheHierarchy::lineOf(u.memAddr, cfg.lineWords));
    }
    // predictionIndex must be read before this uop's own
    // predictor.update shifts the global history — leakObserve runs
    // at the top of processUop, so it is.
    if (u.isBranch)
        fp->branchEntries.insert(predictor.predictionIndex(u.pc));
}

std::vector<TimingModel::RegionLeak>
TimingModel::leakReport() const
{
    std::vector<RegionLeak> out;
    for (const auto &[rid, discarded] : discardedFp) {
        RegionLeak leak;
        leak.regionId = rid;
        const auto attempts = abortedAttempts.find(rid);
        leak.abortedAttempts =
            attempts != abortedAttempts.end() ? attempts->second : 0;
        const auto committed = committedFp.find(rid);
        static const LeakFootprint kEmpty;
        const LeakFootprint &base = committed != committedFp.end()
                                        ? committed->second
                                        : kEmpty;
        for (uint64_t line : discarded.lines) {
            if (!base.lines.count(line))
                leak.leakedLines.push_back(line);
        }
        for (size_t entry : discarded.branchEntries) {
            if (!base.branchEntries.count(entry))
                leak.leakedBranchEntries.push_back(entry);
        }
        out.push_back(std::move(leak));
    }
    return out;
}

uint64_t
TimingModel::historyComplete(uint64_t seq) const
{
    if (seq == 0 || seq + HIST <= uopCount)
        return 0;   // ancient producer: long since complete
    return ringBase + completeRing[seq % HIST];
}

void
TimingModel::rebaseRings(uint64_t anchor)
{
    // Keep the origin 2^31 cycles behind the anchor: every value a
    // future read can observe lies within a few million cycles of
    // the current dispatch cycle (the rings only retain HIST uops,
    // and per-uop cycle advance is bounded by the largest modelled
    // latency), so live entries never come near the clamp below and
    // clamped ancient entries stay far under any gate comparison.
    ++ringRebases;
    const uint64_t new_base = anchor - (1ull << 31);
    AREGION_ASSERT(new_base > ringBase,
                   "ring rebase must advance: ", ringBase, " -> ",
                   new_base);
    const uint64_t shift = new_base - ringBase;
    for (uint32_t &v : completeRing)
        v = v >= shift ? static_cast<uint32_t>(v - shift) : 0;
    for (uint32_t &v : retireRing)
        v = v >= shift ? static_cast<uint32_t>(v - shift) : 0;
    ringBase = new_base;
}

void
TimingModel::processUop(const TraceUop &u)
{
    ++uopCount;
    if (leakOn) [[unlikely]]
        leakObserve(u);

    // --- Dispatch -------------------------------------------------
    // Each gate that raises the dispatch cycle is a stall candidate;
    // the *last* gate to raise `d` dominated and gets the blame
    // (telemetry `timing.stall.*`). Keep the gates as branches: a
    // conditional-move rewrite was measured ~10% slower end to end —
    // the host predicts these branches well, and cmovs chain every
    // gate into `d`'s serial dependency path.
    uint64_t d = dispatchCycle;
    uint64_t *blame = nullptr;
    auto gate = [&](uint64_t at, uint64_t &bucket) {
        if (at > d) {
            d = at;
            blame = &bucket;
        }
    };
    // ROB occupancy: wait for the uop robSize back to retire.
    if (u.seq > static_cast<uint64_t>(cfg.robSize)) {
        gate(ringBase + retireRing[(u.seq - static_cast<uint64_t>(
                 cfg.robSize)) % HIST],
             stallRob);
    }
    // Scheduling window: bounded distance past incomplete uops.
    if (u.seq > static_cast<uint64_t>(cfg.schedWindow)) {
        gate(ringBase + completeRing[(u.seq - static_cast<uint64_t>(
                 cfg.schedWindow)) % HIST],
             stallSched);
    }
    gate(fetchResumeAt, stallFetch);
    // A pending locked operation gates later memory operations (the
    // store stream stays ordered); independent ALU work continues.
    if (u.isLoad || u.isStore || u.serializing)
        gate(serialGate, stallSerial);
    if (u.serializing) {
        ++serializations;
        // Locked operations drain the store stream (prior stores and
        // serializing ops), not the whole instruction window.
        gate(maxStoreComplete, stallSerial);
    }
    if (u.region == RegionEvent::Begin) {
        ++regionBegins;
        regionOpen = true;
        switch (cfg.regionImpl) {
          case TimingConfig::RegionImpl::Checkpoint:
            break;    // rename-table checkpoint: free
          case TimingConfig::RegionImpl::StallBegin:
            d += static_cast<uint64_t>(cfg.beginStallCycles);
            blame = &stallRegion;
            break;
          case TimingConfig::RegionImpl::SingleInflight:
            gate(lastRegionEndRetire, stallRegion);
            break;
        }
    }
    if (blame)
        ++*blame;
    // Width-limited dispatch.
    if (d > dispatchCycle) {
        dispatchCycle = d;
        dispatchedInCycle = 0;
    }
    if (++dispatchedInCycle > cfg.width) {
        ++dispatchCycle;
        dispatchedInCycle = 1;
        d = dispatchCycle;
    }

    // --- Execute --------------------------------------------------
    uint64_t ready = d;
    for (int i = 0; i < u.numSrcs; ++i)
        ready = std::max(ready, historyComplete(u.srcSeq[i]));

    uint64_t latency = 1;
    switch (u.lat) {
      case LatClass::Int:
      case LatClass::Branch:
      case LatClass::Store:
        latency = 1;
        break;
      case LatClass::Mul:
        latency = static_cast<uint64_t>(cfg.mulLatency);
        break;
      case LatClass::Div:
        latency = static_cast<uint64_t>(cfg.divLatency);
        break;
      case LatClass::Load:
        latency = static_cast<uint64_t>(
            caches.accessLatency(u.memAddr, cfg.lineWords));
        break;
      case LatClass::Serial:
        latency = static_cast<uint64_t>(cfg.serialLatency);
        if (u.isLoad || u.isStore)
            caches.accessLatency(u.memAddr, cfg.lineWords);
        break;
    }
    if (u.isStore && u.lat == LatClass::Store)
        caches.accessLatency(u.memAddr, cfg.lineWords);

    const uint64_t complete = ready + latency;
    if (complete - ringBase > 0xffffffffull) [[unlikely]]
        rebaseRings(complete);
    completeRing[u.seq % HIST] =
        static_cast<uint32_t>(complete - ringBase);
    lastUopComplete = complete;
    maxComplete = std::max(maxComplete, complete);
    if (u.isStore || u.serializing)
        maxStoreComplete = std::max(maxStoreComplete, complete);
    if (u.serializing)
        serialGate = std::max(serialGate, complete);

    // --- Branch resolution ----------------------------------------
    if (u.isBranch) {
        ++branches;
        const bool predicted = predictor.predictTaken(u.pc);
        bool flushed = false;
        if (predicted != u.taken) {
            ++mispredicts;
            flushed = true;
        } else if (fpMispredict && fpMispredict->evaluate()) {
            // Forced flush: model front-end pressure by charging a
            // correctly-predicted branch the full redirect penalty.
            ++injectedMispredicts;
            flushed = true;
        }
        if (flushed) {
            fetchResumeAt = std::max(
                fetchResumeAt,
                complete + static_cast<uint64_t>(
                    cfg.mispredictPenalty));
        }
        predictor.update(u.pc, u.taken);
    } else if (u.indirect) {
        ++indirects;
        if (predictor.predictTarget(u.pc) != u.targetPc) {
            ++indirectMispredicts;
            fetchResumeAt = std::max(
                fetchResumeAt,
                complete + static_cast<uint64_t>(
                    cfg.mispredictPenalty));
        }
        predictor.updateTarget(u.pc, u.targetPc);
    }

    // --- Retire (in order, width per cycle) -----------------------
    uint64_t r = std::max(complete, lastRetire);
    if (r > retireCycle) {
        retireCycle = r;
        retiredInCycle = 0;
    }
    if (++retiredInCycle > cfg.width) {
        ++retireCycle;
        retiredInCycle = 1;
        r = retireCycle;
    }
    if (r - ringBase > 0xffffffffull) [[unlikely]]
        rebaseRings(r);
    retireRing[u.seq % HIST] = static_cast<uint32_t>(r - ringBase);
    lastRetire = std::max(lastRetire, r);

    if (u.region == RegionEvent::End) {
        regionOpen = false;
        lastRegionEndRetire = r;
    }
}

void
TimingModel::abortFlush(const AbortEvent &event)
{
    ++abortFlushes;
    if (leakOn && curRegionId >= 0) {
        // The attempt's footprint is now discarded work; the next
        // `discardedUops` uops outside any region are the alternate
        // path re-doing it non-speculatively — the committed replay
        // whose footprint the leak diff subtracts.
        discardedFp[curRegionId].merge(attemptFp);
        ++abortedAttempts[curRegionId];
        replayRegion = curRegionId;
        replayRemaining = event.discardedUops;
        attemptFp = LeakFootprint{};
        curRegionId = -1;
    }
    regionOpen = false;
    // The pipeline flushes and redirects once the aborting
    // instruction (the last uop streamed) resolves, like a branch
    // mispredict (Section 6.1: early aborts cost little more than a
    // pipeline flush).
    fetchResumeAt = std::max(
        fetchResumeAt,
        lastUopComplete + static_cast<uint64_t>(
            cfg.mispredictPenalty));
    lastRegionEndRetire =
        std::max(lastRegionEndRetire, lastUopComplete);
}

void
TimingModel::marker(int64_t id)
{
    markerCycles.emplace_back(id, lastRetire);
}

void
TimingModel::publishTelemetry() const
{
    namespace keys = telemetry::keys;
    auto &reg = telemetry::Registry::global();
    reg.add(keys::kTimingCycles, cycles());
    reg.add(keys::kTimingUops, uopCount);
    reg.add(keys::kTimingBranches, branches);
    reg.add(keys::kTimingMispredicts, mispredicts);
    reg.add(keys::kTimingIndirectMispredicts, indirectMispredicts);
    reg.add(keys::kTimingSerializations, serializations);
    reg.add(keys::kTimingRegionBegins, regionBegins);
    reg.add(keys::kTimingAbortFlushes, abortFlushes);
    reg.add(keys::kTimingL1Misses, l1Misses());
    reg.add(keys::kTimingL2Misses, l2Misses());
    reg.add(keys::kTimingStallRob, stallRob);
    reg.add(keys::kTimingStallSched, stallSched);
    reg.add(keys::kTimingStallFetch, stallFetch);
    reg.add(keys::kTimingStallSerial, stallSerial);
    reg.add(keys::kTimingStallRegion, stallRegion);
    if (fpMispredict)
        reg.add(keys::kTimingInjectMispredict, injectedMispredicts);
    // Leakage-observer counters register only when the mode is on,
    // keeping default runs' telemetry (and their JSON exports)
    // byte-identical.
    if (cfg.leakObserver) {
        const std::vector<RegionLeak> report = leakReport();
        uint64_t flagged = 0;
        uint64_t leaked_lines = 0;
        uint64_t leaked_branches = 0;
        for (const RegionLeak &leak : report) {
            if (leak.leaky())
                ++flagged;
            leaked_lines += leak.leakedLines.size();
            leaked_branches += leak.leakedBranchEntries.size();
        }
        reg.add(keys::kTimingLeakRegions, report.size());
        reg.add(keys::kTimingLeakFlagged, flagged);
        reg.add(keys::kTimingLeakLines, leaked_lines);
        reg.add(keys::kTimingLeakBranches, leaked_branches);
    }
    // IPC of the cumulative registry totals, so a multi-run bench
    // reports its aggregate throughput.
    const uint64_t total_uops = reg.counterValue(keys::kTimingUops);
    const uint64_t total_cycles =
        reg.counterValue(keys::kTimingCycles);
    if (total_cycles > 0) {
        reg.set(keys::kTimingIpc,
                static_cast<double>(total_uops) /
                    static_cast<double>(total_cycles));
    }
}

} // namespace aregion::hw
