/**
 * @file
 * Functional machine simulator with hardware atomicity.
 *
 * Implements the checkpoint substrate of Section 3: a register
 * checkpoint at aregion_begin, store buffering with read/write-set
 * tracking at L1-line granularity, ownership-style eager conflict
 * detection against the other hardware contexts, best-effort limits
 * (set-associativity overflow, timer interrupts, traps, blocking or
 * irrevocable operations), and flash commit/abort.
 *
 * Threads are deterministic hardware contexts scheduled round-robin;
 * context 0 (the benchmark thread) streams its uops to a TraceSink
 * for timing simulation. Trace delivery is batched through
 * TraceSink::uopBatch; batches are flushed before every abortFlush()
 * and marker() so the sink observes the same event order as with
 * per-uop delivery.
 *
 * All speculative state lives in flat, epoch-tagged containers that
 * are allocated once per context and reset in O(1) at aregion_begin,
 * so steady-state region entry never touches the allocator — the
 * "checkpoint is cheap" premise the paper's Section 3 argues for in
 * hardware, mirrored in the simulator's own hot loop.
 */

#ifndef AREGION_HW_MACHINE_HH
#define AREGION_HW_MACHINE_HH

#include <map>
#include <optional>
#include <vector>

#include "hw/isa.hh"
#include "hw/spec_state.hh"
#include "hw/trace.hh"
#include "support/statistics.hh"
#include "support/telemetry.hh"
#include "vm/heap.hh"
#include "vm/trap.hh"

namespace aregion::failpoint {
class Failpoint;
} // namespace aregion::failpoint

namespace aregion::hw {

class BisimOracle;
class RollbackOracle;

/**
 * Contention-control hook (runtime/resilience.hh implements it):
 * consulted after every abort for a backoff stall and informed of
 * every commit so fairness windows can reset. Attach-only, like
 * RollbackOracle; nullptr (the default) is fully inert. The machine
 * serializes all calls (contexts are stepped round-robin on one host
 * thread), so implementations need no locking of their own.
 */
class ContentionControl
{
  public:
    virtual ~ContentionControl() = default;

    /** The abort handler for `ctx_id` just ran; return how many
     *  scheduler steps the context must stall before resuming on the
     *  alternate path (0 = no backoff). */
    virtual uint64_t onAbort(int ctx_id, AbortCause cause) = 0;

    /** A region of `ctx_id` committed. */
    virtual void onCommit(int ctx_id) = 0;
};

/** Architectural (functional) hardware parameters. */
struct HwConfig
{
    /** L1 geometry bounding speculative footprints (32KB/4-way/64B
     *  lines of Table 1 -> 512 lines, 128 sets, 8 words per line). */
    int l1Lines = 512;
    int l1Assoc = 4;
    int lineWords = 8;

    /** Executed uops between timer interrupts (machine-wide). */
    uint64_t interruptPeriod = 4'000'000;

    /** Scheduler quantum (uops) per context. */
    uint64_t quantum = 50;

    /**
     * Hardware context (thread) capacity. Sizes the heap's
     * yield-flag block, so raising it shifts every heap address —
     * the default mirrors the interpreter's layout::MAX_THREADS to
     * keep the historical memory map (and therefore all timing
     * figures) byte-identical. The contention harness raises it to
     * run up to 32 worker contexts.
     */
    int maxContexts = vm::layout::MAX_THREADS;

    /**
     * Livelock guard: after this many consecutive aborts on one
     * context with no intervening commit, region entry is suppressed
     * (aregion_begin branches straight to the alternate pc, i.e. the
     * non-speculative path) so an always-aborting region still makes
     * forward progress. Every 64th suppressed entry probes
     * speculation again; a commit clears the suppression. 0 disables
     * the guard (the default — benchmarks keep the paper's
     * retry-forever hardware).
     */
    uint64_t maxConsecutiveAborts = 0;
};

/** Runtime statistics for one static region. */
struct RegionRuntime
{
    uint64_t entries = 0;
    uint64_t commits = 0;
    /** Explicit aborts keyed by the compiler's assert id (the
     *  abort-code register of Section 3.2, which adaptive
     *  recompilation maps back to the converted cold edge). */
    std::map<int, uint64_t> abortsByAssert;
    /** Aborts indexed by static_cast<int>(AbortCause); mirrored
     *  process-wide as the `machine.abort.*` telemetry counters
     *  (see docs/TELEMETRY.md). */
    uint64_t abortsByCause[kNumAbortCauses] = {};
    aregion::Histogram dynamicSize;     ///< uops per committed region
    aregion::Histogram footprintLines;  ///< lines touched at commit

    uint64_t
    totalAborts() const
    {
        uint64_t total = 0;
        for (uint64_t c : abortsByCause)
            total += c;
        return total;
    }
};

/** One sampling-marker crossing on the traced context. */
struct MarkerHit
{
    int64_t id;
    uint64_t retiredUops;   ///< traced context's retired uops so far
};

/** Results of a machine run. */
struct MachineResult
{
    bool completed = false;
    std::optional<vm::Trap> trap;

    /** Traced context (0): committed + wasted work. */
    uint64_t retiredUops = 0;       ///< excludes aborted-region uops
    uint64_t executedUops = 0;      ///< includes them
    uint64_t discardedUops = 0;
    uint64_t regionUopsRetired = 0; ///< retired inside regions
    uint64_t allContextUops = 0;

    uint64_t regionEntries = 0;
    uint64_t regionCommits = 0;
    uint64_t regionAborts = 0;
    uint64_t monitorFastEnters = 0; ///< CAS fast-path acquisitions

    /** Fault-injection effects (zero unless failpoints are armed;
     *  `machine.inject.*` telemetry). */
    uint64_t injectedInterrupts = 0;
    uint64_t injectedCapacity = 0;  ///< regions squeezed at begin
    uint64_t injectedAsserts = 0;
    uint64_t injectedConflicts = 0;     ///< forced at aregion_end
    uint64_t injectedCommitStalls = 0;  ///< commits held open
    uint64_t injectedDivergences = 0;   ///< planted rollback bugs
    uint64_t injectedLeaks = 0;         ///< planted aborted-work traces

    /** Scheduler steps burned in ContentionControl backoff stalls. */
    uint64_t backoffSteps = 0;

    /** Livelock guard (`HwConfig::maxConsecutiveAborts`). */
    uint64_t specSuppressedEntries = 0; ///< begins run non-speculatively
    uint64_t livelockTrips = 0;         ///< times the guard engaged

    /** Per static region: (methodId, regionId) -> stats. */
    std::map<std::pair<int, int>, RegionRuntime> regions;

    std::vector<int64_t> output;
    std::vector<MarkerHit> markers;

    uint64_t outputChecksum() const;
};

/** The machine. */
class Machine
{
  public:
    Machine(const MachineProgram &prog, const HwConfig &config,
            TraceSink *sink = nullptr,
            uint64_t max_words = 1ull << 26);

    Machine(MachineProgram &&, const HwConfig &, TraceSink * = nullptr,
            uint64_t = 0) = delete;

    /** Run main to completion (or until the uop budget is hit). */
    MachineResult run(uint64_t max_uops = 1ull << 33);

    const vm::Heap &heap() const { return heapImpl; }

    /** Attach a rollback consistency oracle (hw/oracle.hh). Test
     *  harness only: snapshots the heap at every region entry. Must
     *  outlive run(); nullptr (the default) is fully inert. */
    void setOracle(RollbackOracle *o) { oracle = o; }

    /** Attach a deopt bisimulation oracle (hw/bisim.hh): every abort
     *  is checked by non-speculative replay from the checkpoint.
     *  Same lifetime contract as setOracle; nullptr is inert. */
    void setBisimOracle(BisimOracle *b) { bisim = b; }

    /** Attach a contention controller (runtime/resilience.hh). Same
     *  lifetime contract as setOracle; nullptr is inert. */
    void setContentionControl(ContentionControl *c) { contention = c; }

  private:
    struct Frame
    {
        const MachineFunction *fn = nullptr;
        std::vector<int64_t> regs;
        std::vector<uint64_t> lastWriter;   ///< reg -> producer seq
        int pc = 0;
        MReg retDst = NO_MREG;
    };

    /**
     * Speculative state of one context (one open region; no
     * nesting). Lives persistently inside the Ctx: aregion_begin
     * bumps the container epochs instead of reconstructing, so
     * steady-state region entry is allocation-free.
     */
    struct Spec
    {
        bool active = false;
        int regionId = -1;
        int method = -1;
        int altPc = 0;
        uint64_t beginPc = 0;
        uint64_t uops = 0;
        /** Effective line limit for this region's footprint; set at
         *  aregion_begin to HwConfig::l1Lines, or lower when the
         *  machine.capacity failpoint fires (artificial pressure). */
        int capLines = 0;
        RegionRuntime *stats = nullptr; ///< map node cached at begin
        std::vector<int64_t> regsSnapshot;
        std::vector<uint64_t> writersSnapshot;
        StoreBuffer storeBuf;
        LineSet readLines;
        LineSet writeLines;
        SetOccupancy setOccupancy;
    };

    struct Ctx
    {
        int id = 0;
        /** Frame pool: [0, depth) are the live call stack; returning
         *  pops depth but keeps the frame (and its register vectors'
         *  capacity) for the next invoke. */
        std::vector<Frame> stack;
        size_t depth = 0;
        Spec spec;
        bool finished = false;
        uint64_t blockedOn = 0;             ///< monitor address or 0
        std::optional<AbortCause> pendingAbort;
        std::vector<int64_t> argScratch;    ///< call-argument staging

        /** Livelock guard state (HwConfig::maxConsecutiveAborts). */
        uint64_t consecutiveAborts = 0;
        uint64_t suppressedEntries = 0;     ///< probe counter
        bool specSuppressed = false;

        /** Scheduler steps this context must burn before executing
         *  again: an injected commit stall (machine.commit_stall)
         *  or a ContentionControl backoff. */
        uint64_t stallSteps = 0;
        /** The open region already drew its commit-stall; AEnd
         *  re-executes after the stall without re-drawing. */
        bool commitStalled = false;

        Frame &top() { return stack[depth - 1]; }
    };

    /** Thrown internally to unwind to the abort handler. */
    struct RegionAbort
    {
        AbortCause cause;
        int abortId = -1;
    };

    void initCtx(Ctx &ctx);
    void step(Ctx &ctx);
    void execute(Ctx &ctx, const MUop &uop, uint64_t pc);
    void invoke(Ctx &ctx, vm::MethodId callee, const int64_t *argv,
                size_t argc, MReg ret_dst, uint64_t call_seq);
    /**
     * Abort the open region of `ctx` (the hardware side of
     * `aregion_abort` and of every implicit abort; paper Section
     * 3.2): restore the register checkpoint, discard the store
     * buffer and read/write sets, redirect to the region's
     * alternate pc, and record the cause in the diagnosis
     * registers (RegionRuntime::abortsByCause and the
     * `machine.abort.*` telemetry counters).
     *
     * @param cause      hardware cause register value
     * @param abort_id   software abort code (assert id) for
     *                   AbortCause::Explicit, -1 otherwise
     * @param resolve_pc global pc of the aborting instruction
     */
    void doAbort(Ctx &ctx, AbortCause cause, int abort_id,
                 uint64_t resolve_pc);

    /**
     * Commit the open region of `ctx` (the hardware side of
     * `aregion_end`; paper Section 3.1 "flash commit"): drain the
     * store buffer to the heap atomically, publish conflicts to
     * concurrently speculating contexts, and record the dynamic
     * size and cache-footprint statistics.
     */
    void commitRegion(Ctx &ctx);

    /** Mirror MachineResult into the process-wide telemetry
     *  registry (called once at the end of run()). */
    void publishTelemetry();

    int64_t memRead(Ctx &ctx, uint64_t addr);
    void memWrite(Ctx &ctx, uint64_t addr, int64_t value);
    void trackSpecLine(Ctx &ctx, uint64_t line);
    void signalConflicts(Ctx &writer_ctx, uint64_t line);

    uint64_t checkRef(Ctx &ctx, int64_t value, const MUop &uop);
    void raiseTrap(Ctx &ctx, vm::TrapKind kind, const MUop &uop);

    uint64_t
    lineOf(uint64_t addr) const
    {
        return lineIsPow2 ? addr >> lineShift : addr / lineWordsU;
    }

    uint64_t
    setOf(uint64_t line) const
    {
        return setsArePow2 ? line & setMask : line % numSetsU;
    }

    /** Append to the trace batch; flushes when the ring fills. The
     *  per-uop entry is built in a local (register-allocated) struct
     *  and copied in here once complete — an in-place emplace was
     *  measured slower because the indirection blocks scalar
     *  replacement of the entry's fields. */
    void
    pushTrace(const TraceUop &t)
    {
        batch.push_back(t);
        if (batch.size() >= BATCH_CAP)
            flushTrace();
    }

    /** Hand the buffered uops to the sink in one uopBatch call. */
    void flushTrace();

    const MachineProgram &mp;
    HwConfig config;
    TraceSink *sink;
    RollbackOracle *oracle = nullptr;
    BisimOracle *bisim = nullptr;
    ContentionControl *contention = nullptr;

    /** Failpoint handles, resolved once per run() so the armed case
     *  costs a pointer test per hook and the unarmed case costs the
     *  single `injectOn` branch (support/failpoint.hh). */
    bool injectOn = false;
    failpoint::Failpoint *fpInterrupt = nullptr;
    failpoint::Failpoint *fpCapacity = nullptr;
    failpoint::Failpoint *fpAssert = nullptr;
    failpoint::Failpoint *fpConflict = nullptr;
    failpoint::Failpoint *fpCommitStall = nullptr;
    failpoint::Failpoint *fpDivergence = nullptr;
    failpoint::Failpoint *fpLeak = nullptr;

    vm::Heap heapImpl;
    std::vector<Ctx> ctxs;
    MachineResult result;
    uint64_t machineUops = 0;       ///< all contexts (interrupt clock)
    uint64_t tracedSeq = 0;         ///< trace sequence for context 0
    uint64_t interruptCountdown = 0;

    /** HwConfig-derived constants, computed once at construction. */
    bool lineIsPow2 = false;
    uint32_t lineShift = 0;
    uint64_t lineWordsU = 8;
    bool setsArePow2 = false;
    uint64_t setMask = 0;
    uint64_t numSetsU = 1;
    size_t lineTableCap = 2;

    static constexpr size_t BATCH_CAP = 256;
    std::vector<TraceUop> batch;
    uint64_t batchFlushes = 0;
    uint64_t batchUops = 0;

    /** Per-run commit-footprint histograms, accumulated locally and
     *  merged into the registry at publishTelemetry so concurrent
     *  machines (support/parallel.hh) never race. */
    aregion::Histogram readLinesLocal;
    aregion::Histogram writeLinesLocal;
};

} // namespace aregion::hw

#endif // AREGION_HW_MACHINE_HH
