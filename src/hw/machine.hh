/**
 * @file
 * Functional machine simulator with hardware atomicity.
 *
 * Implements the checkpoint substrate of Section 3: a register
 * checkpoint at aregion_begin, store buffering with read/write-set
 * tracking at L1-line granularity, ownership-style eager conflict
 * detection against the other hardware contexts, best-effort limits
 * (set-associativity overflow, timer interrupts, traps, blocking or
 * irrevocable operations), and flash commit/abort.
 *
 * Threads are deterministic hardware contexts scheduled round-robin;
 * context 0 (the benchmark thread) streams its uops to a TraceSink
 * for timing simulation.
 */

#ifndef AREGION_HW_MACHINE_HH
#define AREGION_HW_MACHINE_HH

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "hw/isa.hh"
#include "hw/trace.hh"
#include "support/statistics.hh"
#include "support/telemetry.hh"
#include "vm/heap.hh"
#include "vm/trap.hh"

namespace aregion::hw {

/** Architectural (functional) hardware parameters. */
struct HwConfig
{
    /** L1 geometry bounding speculative footprints (32KB/4-way/64B
     *  lines of Table 1 -> 512 lines, 128 sets, 8 words per line). */
    int l1Lines = 512;
    int l1Assoc = 4;
    int lineWords = 8;

    /** Executed uops between timer interrupts (machine-wide). */
    uint64_t interruptPeriod = 4'000'000;

    /** Scheduler quantum (uops) per context. */
    uint64_t quantum = 50;
};

/** Runtime statistics for one static region. */
struct RegionRuntime
{
    uint64_t entries = 0;
    uint64_t commits = 0;
    /** Explicit aborts keyed by the compiler's assert id (the
     *  abort-code register of Section 3.2, which adaptive
     *  recompilation maps back to the converted cold edge). */
    std::map<int, uint64_t> abortsByAssert;
    /** Aborts indexed by static_cast<int>(AbortCause); mirrored
     *  process-wide as the `machine.abort.*` telemetry counters
     *  (see docs/TELEMETRY.md). */
    uint64_t abortsByCause[6] = {0, 0, 0, 0, 0, 0};
    aregion::Histogram dynamicSize;     ///< uops per committed region
    aregion::Histogram footprintLines;  ///< lines touched at commit

    uint64_t
    totalAborts() const
    {
        uint64_t total = 0;
        for (uint64_t c : abortsByCause)
            total += c;
        return total;
    }
};

/** One sampling-marker crossing on the traced context. */
struct MarkerHit
{
    int64_t id;
    uint64_t retiredUops;   ///< traced context's retired uops so far
};

/** Results of a machine run. */
struct MachineResult
{
    bool completed = false;
    std::optional<vm::Trap> trap;

    /** Traced context (0): committed + wasted work. */
    uint64_t retiredUops = 0;       ///< excludes aborted-region uops
    uint64_t executedUops = 0;      ///< includes them
    uint64_t discardedUops = 0;
    uint64_t regionUopsRetired = 0; ///< retired inside regions
    uint64_t allContextUops = 0;

    uint64_t regionEntries = 0;
    uint64_t regionCommits = 0;
    uint64_t regionAborts = 0;
    uint64_t monitorFastEnters = 0; ///< CAS fast-path acquisitions

    /** Per static region: (methodId, regionId) -> stats. */
    std::map<std::pair<int, int>, RegionRuntime> regions;

    std::vector<int64_t> output;
    std::vector<MarkerHit> markers;

    uint64_t outputChecksum() const;
};

/** The machine. */
class Machine
{
  public:
    Machine(const MachineProgram &prog, const HwConfig &config,
            TraceSink *sink = nullptr,
            uint64_t max_words = 1ull << 26);

    Machine(MachineProgram &&, const HwConfig &, TraceSink * = nullptr,
            uint64_t = 0) = delete;

    /** Run main to completion (or until the uop budget is hit). */
    MachineResult run(uint64_t max_uops = 1ull << 33);

    const vm::Heap &heap() const { return heapImpl; }

  private:
    struct Frame
    {
        const MachineFunction *fn;
        std::vector<int64_t> regs;
        std::vector<uint64_t> lastWriter;   ///< reg -> producer seq
        int pc = 0;
        MReg retDst = NO_MREG;
    };

    /** Open speculation state (one region; no nesting). */
    struct Spec
    {
        int regionId;
        int method;
        int altPc;
        uint64_t beginPc;
        std::vector<int64_t> regsSnapshot;
        std::vector<uint64_t> writersSnapshot;
        std::map<uint64_t, int64_t> storeBuf;
        std::set<uint64_t> readLines;
        std::set<uint64_t> writeLines;
        std::map<uint64_t, int> setOccupancy;
        uint64_t uops = 0;
    };

    struct Ctx
    {
        int id = 0;
        std::vector<Frame> stack;
        std::optional<Spec> spec;
        bool finished = false;
        uint64_t blockedOn = 0;             ///< monitor address or 0
        std::optional<AbortCause> pendingAbort;
    };

    /** Thrown internally to unwind to the abort handler. */
    struct RegionAbort
    {
        AbortCause cause;
        int abortId = -1;
    };

    void step(Ctx &ctx);
    void execute(Ctx &ctx, const MUop &uop, uint64_t pc);
    void invoke(Ctx &ctx, vm::MethodId callee,
                const std::vector<int64_t> &argv, MReg ret_dst,
                uint64_t call_seq);
    /**
     * Abort the open region of `ctx` (the hardware side of
     * `aregion_abort` and of every implicit abort; paper Section
     * 3.2): restore the register checkpoint, discard the store
     * buffer and read/write sets, redirect to the region's
     * alternate pc, and record the cause in the diagnosis
     * registers (RegionRuntime::abortsByCause and the
     * `machine.abort.*` telemetry counters).
     *
     * @param cause      hardware cause register value
     * @param abort_id   software abort code (assert id) for
     *                   AbortCause::Explicit, -1 otherwise
     * @param resolve_pc global pc of the aborting instruction
     */
    void doAbort(Ctx &ctx, AbortCause cause, int abort_id,
                 uint64_t resolve_pc);

    /**
     * Commit the open region of `ctx` (the hardware side of
     * `aregion_end`; paper Section 3.1 "flash commit"): drain the
     * store buffer to the heap atomically, publish conflicts to
     * concurrently speculating contexts, and record the dynamic
     * size and cache-footprint statistics.
     */
    void commitRegion(Ctx &ctx);

    /** Mirror MachineResult into the process-wide telemetry
     *  registry (called once at the end of run()). */
    void publishTelemetry();

    int64_t memRead(Ctx &ctx, uint64_t addr);
    void memWrite(Ctx &ctx, uint64_t addr, int64_t value);
    void trackSpecLine(Ctx &ctx, uint64_t line);
    void signalConflicts(Ctx &writer_ctx, uint64_t line);
    RegionRuntime &regionStats(const Ctx &ctx);

    uint64_t checkRef(Ctx &ctx, int64_t value, const MUop &uop);
    void raiseTrap(Ctx &ctx, vm::TrapKind kind, const MUop &uop);

    const MachineProgram &mp;
    HwConfig config;
    TraceSink *sink;
    vm::Heap heapImpl;
    std::deque<Ctx> ctxs;
    MachineResult result;
    uint64_t machineUops = 0;       ///< all contexts (interrupt clock)
    uint64_t tracedSeq = 0;         ///< trace sequence for context 0
    std::optional<vm::Trap> fatalTrap;

    /** Cached telemetry slots (stable for the process lifetime). */
    aregion::Histogram *readLinesHist = nullptr;
    aregion::Histogram *writeLinesHist = nullptr;
};

} // namespace aregion::hw

#endif // AREGION_HW_MACHINE_HH
