/**
 * @file
 * Branch prediction: a combining (tournament) predictor with gshare
 * and bimodal components (Table 1: "combine: 64K gshare/16K bimod"),
 * plus a last-target table for indirect calls.
 */

#ifndef AREGION_HW_BRANCH_PREDICTOR_HH
#define AREGION_HW_BRANCH_PREDICTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aregion::hw {

/** Two-bit saturating counter table helper. Counters are packed
 *  four per byte, so the 64K-entry gshare table occupies 16 KB of
 *  host memory — small enough that the simulator's random index
 *  stream mostly hits the host cache. */
class CounterTable
{
  public:
    explicit CounterTable(size_t entries)
        : indexMask(entries - 1), table((entries + 3) / 4, 0xaa)
    {
        // 0xaa = four counters at 2 (weakly taken).
    }

    bool
    taken(size_t index) const
    {
        const size_t i = index & indexMask;
        return ((table[i >> 2] >> ((i & 3) * 2)) & 3) >= 2;
    }

    void
    update(size_t index, bool taken_outcome)
    {
        const size_t i = index & indexMask;
        uint8_t &byte = table[i >> 2];
        const int shift = static_cast<int>(i & 3) * 2;
        const uint8_t c = (byte >> shift) & 3;
        if (taken_outcome && c < 3)
            byte = static_cast<uint8_t>(byte + (1u << shift));
        else if (!taken_outcome && c > 0)
            byte = static_cast<uint8_t>(byte - (1u << shift));
    }

  private:
    size_t indexMask;
    std::vector<uint8_t> table;
};

/** The combining predictor. */
class BranchPredictor
{
  public:
    BranchPredictor(size_t gshare_entries = 64 * 1024,
                    size_t bimodal_entries = 16 * 1024,
                    size_t target_entries = 4 * 1024);

    /** Predict the direction of the conditional branch at pc. */
    bool predictTaken(uint64_t pc) const;

    /** Train with the actual outcome. */
    void update(uint64_t pc, bool taken);

    /** Last-target prediction for indirect calls (0 = no entry). */
    uint64_t predictTarget(uint64_t pc) const;
    void updateTarget(uint64_t pc, uint64_t target);

    /** The gshare entry a branch at pc trains under the *current*
     *  global history — the microarchitectural state a speculative
     *  branch leaves behind even when its region aborts. The timing
     *  model's leakage observer records these to diff discarded
     *  against committed predictor footprints. */
    size_t
    predictionIndex(uint64_t pc) const
    {
        return gshareIndex(pc) & gshareMask;
    }

  private:
    size_t gshareIndex(uint64_t pc) const;

    CounterTable gshare;
    CounterTable bimodal;
    CounterTable chooser;       ///< >=2 selects gshare
    size_t gshareMask = 0;
    uint64_t history = 0;
    std::vector<uint64_t> targets;
};

} // namespace aregion::hw

#endif // AREGION_HW_BRANCH_PREDICTOR_HH
