/**
 * @file
 * Branch prediction: a combining (tournament) predictor with gshare
 * and bimodal components (Table 1: "combine: 64K gshare/16K bimod"),
 * plus a last-target table for indirect calls.
 */

#ifndef AREGION_HW_BRANCH_PREDICTOR_HH
#define AREGION_HW_BRANCH_PREDICTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aregion::hw {

/** Two-bit saturating counter table helper. */
class CounterTable
{
  public:
    explicit CounterTable(size_t entries)
        : table(entries, 2)     // weakly taken
    {
    }

    bool taken(size_t index) const { return table[mask(index)] >= 2; }

    void
    update(size_t index, bool taken_outcome)
    {
        uint8_t &c = table[mask(index)];
        if (taken_outcome && c < 3)
            ++c;
        else if (!taken_outcome && c > 0)
            --c;
    }

  private:
    size_t mask(size_t index) const { return index & (table.size() - 1); }

    std::vector<uint8_t> table;
};

/** The combining predictor. */
class BranchPredictor
{
  public:
    BranchPredictor(size_t gshare_entries = 64 * 1024,
                    size_t bimodal_entries = 16 * 1024,
                    size_t target_entries = 4 * 1024);

    /** Predict the direction of the conditional branch at pc. */
    bool predictTaken(uint64_t pc) const;

    /** Train with the actual outcome. */
    void update(uint64_t pc, bool taken);

    /** Last-target prediction for indirect calls (0 = no entry). */
    uint64_t predictTarget(uint64_t pc) const;
    void updateTarget(uint64_t pc, uint64_t target);

  private:
    size_t gshareIndex(uint64_t pc) const;

    CounterTable gshare;
    CounterTable bimodal;
    CounterTable chooser;       ///< >=2 selects gshare
    uint64_t history = 0;
    std::vector<uint64_t> targets;
};

} // namespace aregion::hw

#endif // AREGION_HW_BRANCH_PREDICTOR_HH
