#include "hw/machine.hh"

#include <algorithm>
#include <iterator>

#include "hw/bisim.hh"
#include "hw/oracle.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"
#include "vm/arith.hh"
#include "vm/layout.hh"

namespace aregion::hw {

namespace layout = vm::layout;
using vm::Trap;
using vm::TrapKind;

// Adding an AbortCause must grow the per-region stats array and the
// machine.abort.* telemetry vector in lockstep; a mismatch here
// would silently truncate (or read past) the cause histogram.
static_assert(sizeof(RegionRuntime::abortsByCause) /
                      sizeof(uint64_t) ==
                  kNumAbortCauses,
              "RegionRuntime::abortsByCause must cover every "
              "AbortCause enumerator");
static_assert(std::size(telemetry::keys::kMachineAbortByCause) ==
                  kNumAbortCauses,
              "telemetry kMachineAbortByCause must cover every "
              "AbortCause enumerator");

namespace {

size_t
nextPow2(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

const char *
abortCauseName(AbortCause cause)
{
    switch (cause) {
      case AbortCause::Explicit: return "explicit";
      case AbortCause::Conflict: return "conflict";
      case AbortCause::Overflow: return "overflow";
      case AbortCause::Interrupt: return "interrupt";
      case AbortCause::Exception: return "exception";
      case AbortCause::Io: return "io";
    }
    return "<bad>";
}

uint64_t
MachineResult::outputChecksum() const
{
    uint64_t h = 1469598103934665603ULL;
    for (int64_t v : output) {
        for (int b = 0; b < 8; ++b) {
            h ^= static_cast<uint64_t>(v >> (b * 8)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

Machine::Machine(const MachineProgram &prog, const HwConfig &config_,
                 TraceSink *sink_, uint64_t max_words)
    : mp(prog), config(config_), sink(sink_),
      heapImpl(*prog.prog, max_words, config_.maxContexts)
{
    AREGION_ASSERT(config.maxContexts >= 1,
                   "bad context capacity ", config.maxContexts);
    lineWordsU = static_cast<uint64_t>(std::max(1, config.lineWords));
    lineIsPow2 = (lineWordsU & (lineWordsU - 1)) == 0;
    for (uint64_t w = lineWordsU; w > 1; w >>= 1)
        ++lineShift;
    AREGION_ASSERT(config.l1Assoc > 0 &&
                   config.l1Lines >= config.l1Assoc,
                   "bad L1 geometry");
    numSetsU = static_cast<uint64_t>(config.l1Lines / config.l1Assoc);
    setsArePow2 = (numSetsU & (numSetsU - 1)) == 0;
    setMask = numSetsU - 1;
    lineTableCap = nextPow2(
        2 * static_cast<size_t>(std::max(1, config.l1Lines)));
    // TraceUop carries global pcs (method << 16 | offset) in 32 bits.
    AREGION_ASSERT(prog.prog->numMethods() < (1 << 16),
                   "method ids overflow the 32-bit trace pc");
    batch.reserve(BATCH_CAP);
}

void
Machine::initCtx(Ctx &ctx)
{
    ctx.spec.storeBuf.init(256);
    ctx.spec.readLines.init(lineTableCap);
    ctx.spec.writeLines.init(lineTableCap);
    ctx.spec.setOccupancy.init(static_cast<size_t>(numSetsU));
    ctx.argScratch.reserve(8);
}

void
Machine::flushTrace()
{
    if (batch.empty())
        return;
    sink->uopBatch(batch.data(), batch.size());
    ++batchFlushes;
    batchUops += batch.size();
    batch.clear();
}

void
Machine::trackSpecLine(Ctx &ctx, uint64_t line)
{
    Spec &spec = ctx.spec;
    if (spec.readLines.contains(line) ||
        spec.writeLines.contains(line)) {
        return;
    }
    const int occupancy = spec.setOccupancy.increment(setOf(line));
    const auto total = spec.readLines.size() + spec.writeLines.size();
    // capLines is config.l1Lines except when the machine.capacity
    // failpoint squeezed this region at aregion_begin.
    if (occupancy > config.l1Assoc ||
        total + 1 > static_cast<size_t>(spec.capLines)) {
        throw RegionAbort{AbortCause::Overflow, -1};
    }
}

void
Machine::signalConflicts(Ctx &writer_ctx, uint64_t line)
{
    if (ctxs.size() < 2)
        return;
    for (Ctx &other : ctxs) {
        if (other.id == writer_ctx.id || !other.spec.active ||
            other.pendingAbort) {
            continue;
        }
        if (other.spec.readLines.contains(line) ||
            other.spec.writeLines.contains(line)) {
            other.pendingAbort = AbortCause::Conflict;
        }
    }
}

int64_t
Machine::memRead(Ctx &ctx, uint64_t addr)
{
    if (ctx.spec.active) {
        const uint64_t line = lineOf(addr);
        trackSpecLine(ctx, line);
        ctx.spec.readLines.insert(line);
        if (const int64_t *buffered = ctx.spec.storeBuf.lookup(addr))
            return *buffered;
        // Speculative wild loads (a postdominating check may not
        // have run yet) read as zero.
        const int64_t value =
            heapImpl.inBounds(addr) ? heapImpl.load(addr) : 0;
        if (oracle)
            oracle->onSpecRead(ctx.id, addr, value);
        return value;
    }
    return heapImpl.load(addr);
}

void
Machine::memWrite(Ctx &ctx, uint64_t addr, int64_t value)
{
    const uint64_t line = lineOf(addr);
    if (ctx.spec.active) {
        trackSpecLine(ctx, line);
        ctx.spec.writeLines.insert(line);
        ctx.spec.storeBuf.put(addr, value);
        signalConflicts(ctx, line);
        return;
    }
    heapImpl.store(addr, value);
    if (oracle)
        oracle->onNonSpecStore(addr, value);
    signalConflicts(ctx, line);
}

uint64_t
Machine::checkRef(Ctx &ctx, int64_t value, const MUop &uop)
{
    if (value == 0)
        raiseTrap(ctx, TrapKind::NullPointer, uop);
    return static_cast<uint64_t>(value);
}

void
Machine::raiseTrap(Ctx &ctx, TrapKind kind, const MUop &uop)
{
    if (ctx.spec.active) {
        // Precise exceptions: abort first, re-raise non-speculatively.
        throw RegionAbort{AbortCause::Exception, -1};
    }
    throw Trap(kind, uop.bcMethod, uop.bcPc);
}

void
Machine::doAbort(Ctx &ctx, AbortCause cause, int abort_id,
                 uint64_t resolve_pc)
{
    AREGION_ASSERT(ctx.spec.active, "abort without region");
    Spec &spec = ctx.spec;

    RegionRuntime &stats = *spec.stats;
    stats.abortsByCause[static_cast<int>(cause)]++;
    if (cause == AbortCause::Explicit && abort_id >= 0)
        stats.abortsByAssert[abort_id]++;

    Frame &frame = ctx.top();
    frame.regs = spec.regsSnapshot;
    frame.lastWriter = spec.writersSnapshot;
    frame.pc = spec.altPc;

    // Planted rollback bug (oracle.inject.divergence failpoint): one
    // restored register is corrupted after the checkpoint copy, as a
    // buggy restore path would (payload = delta). The bisimulation
    // oracle must flag it — that is the negative self-test.
    if (injectOn && fpDivergence && fpDivergence->evaluate() &&
        !frame.regs.empty()) {
        result.injectedDivergences++;
        const int64_t delta = fpDivergence->value();
        frame.regs.back() += delta != 0 ? delta : 1;
    }

    result.regionAborts++;
    if (ctx.id == 0) {
        result.discardedUops += spec.uops;
        if (sink) {
            // Planted aborted-work trace (machine.inject.leak
            // failpoint): a speculative load of a line the committed
            // path never touches, streamed before the abort flush so
            // the timing model attributes it to the dying attempt
            // (payload = word address; default one far off the heap).
            if (injectOn && fpLeak && fpLeak->evaluate()) {
                result.injectedLeaks++;
                TraceUop t;
                t.seq = ++tracedSeq;
                t.pc = static_cast<uint32_t>(resolve_pc);
                t.isLoad = true;
                t.lat = LatClass::Load;
                const int64_t payload = fpLeak->value();
                t.memAddr = payload > 0
                                ? static_cast<uint64_t>(payload)
                                : (1ull << 32);
                pushTrace(t);
            }
            flushTrace();
            sink->abortFlush({cause, spec.uops, resolve_pc});
        }
    }
    spec.active = false;
    // Any injected commit stall belonged to the region that just
    // died; a ContentionControl backoff may replace it below.
    ctx.stallSteps = 0;
    ctx.commitStalled = false;

    if (oracle) {
        oracle->checkAbort(ctx.id, ctxs.size(), frame.regs, frame.pc,
                           heapImpl, cause);
    }
    // Bisimulation check (hw/bisim.hh): the spec fields survive the
    // active=false reset above, so the checkpoint is still intact.
    // Contexts interleave on one host thread, so the heap here is the
    // consistent post-abort snapshot even for cross-context aborts.
    if (bisim) {
        bisim->checkAbort(ctx.id, spec.method, spec.regsSnapshot,
                          spec.altPc, frame.regs, frame.pc, heapImpl,
                          cause);
    }
    if (config.maxConsecutiveAborts > 0 &&
        ++ctx.consecutiveAborts >= config.maxConsecutiveAborts &&
        !ctx.specSuppressed) {
        ctx.specSuppressed = true;
        ctx.suppressedEntries = 0;
        result.livelockTrips++;
    }
    if (contention) {
        ctx.stallSteps = contention->onAbort(ctx.id, cause);
        result.backoffSteps += ctx.stallSteps;
    }
}

void
Machine::commitRegion(Ctx &ctx)
{
    Spec &spec = ctx.spec;
    // Serializability check runs against the pre-drain heap: the
    // region's reads must match the committed state it merges into.
    if (oracle)
        oracle->checkCommit(ctx.id, ctxs.size(), heapImpl);
    for (uint32_t idx : spec.storeBuf.live) {
        const StoreBuffer::Slot &slot = spec.storeBuf.slots[idx];
        AREGION_ASSERT(heapImpl.inBounds(slot.addr),
                       "commit of wild speculative store at ",
                       slot.addr);
        heapImpl.store(slot.addr, slot.value);
        if (oracle)
            oracle->onCommitStore(slot.addr, slot.value);
    }
    // Commit makes the region's writes visible: regions that started
    // after our buffered stores and read those lines must conflict.
    for (uint64_t line : spec.writeLines.items)
        signalConflicts(ctx, line);

    RegionRuntime &stats = *spec.stats;
    stats.commits++;
    stats.dynamicSize.add(static_cast<int64_t>(spec.uops));
    stats.footprintLines.add(static_cast<int64_t>(
        spec.readLines.size() + spec.writeLines.size()));
    // Read/write-set occupancy at commit (Section 6.2 footprint
    // split); kept per-run and merged into the registry once at
    // publishTelemetry.
    readLinesLocal.add(static_cast<int64_t>(spec.readLines.size()));
    writeLinesLocal.add(static_cast<int64_t>(spec.writeLines.size()));
    result.regionCommits++;
    if (ctx.id == 0)
        result.regionUopsRetired += spec.uops;
    spec.active = false;

    ctx.commitStalled = false;

    if (oracle)
        oracle->onCommit(ctx.id);
    if (contention)
        contention->onCommit(ctx.id);
    // A commit proves the region can make progress: re-enable
    // speculation if the livelock guard had given up on it.
    ctx.consecutiveAborts = 0;
    ctx.specSuppressed = false;
}

void
Machine::invoke(Ctx &ctx, vm::MethodId callee, const int64_t *argv,
                size_t argc, MReg ret_dst, uint64_t call_seq)
{
    const MachineFunction &fn = mp.func(callee);
    AREGION_ASSERT(static_cast<int>(argc) == fn.numArgs,
                   "machine call arity mismatch into ", fn.name);
    if (ctx.depth == ctx.stack.size())
        ctx.stack.emplace_back();
    Frame &frame = ctx.stack[ctx.depth++];
    frame.fn = &fn;
    frame.pc = 0;
    frame.retDst = ret_dst;
    frame.regs.assign(static_cast<size_t>(fn.numRegs), 0);
    for (size_t i = 0; i < argc; ++i)
        frame.regs[i] = argv[i];
    if (ctx.id == 0 && sink) {
        frame.lastWriter.assign(static_cast<size_t>(fn.numRegs), 0);
        for (size_t i = 0; i < argc; ++i)
            frame.lastWriter[i] = call_seq;
    }
}

void
Machine::execute(Ctx &ctx, const MUop &uop, uint64_t pc)
{
    namespace arith = vm::arith;
    Frame &frame = ctx.top();
    const bool tracing = ctx.id == 0 && sink != nullptr;

    auto reg = [&](MReg r) -> int64_t & {
        AREGION_ASSERT(r >= 0 &&
                       static_cast<size_t>(r) < frame.regs.size(),
                       "machine register out of range");
        return frame.regs[static_cast<size_t>(r)];
    };

    // Sequence numbers and register dependences exist only for the
    // sink-visible trace, so none of that bookkeeping runs unless
    // context 0 is actually being traced.
    TraceUop t;
    if (tracing) {
        t.seq = ++tracedSeq;
        t.pc = pc;
        t.numSrcs = static_cast<int>(
            std::min<size_t>(uop.srcs.size(), 3));
        for (int i = 0; i < t.numSrcs; ++i) {
            t.srcSeq[i] = frame.lastWriter[
                static_cast<size_t>(uop.srcs[static_cast<size_t>(i)])];
        }
    }
    auto writeDst = [&](MReg dst, int64_t value) {
        reg(dst) = value;
        if (tracing)
            frame.lastWriter[static_cast<size_t>(dst)] = t.seq;
    };

    int next_pc = frame.pc + 1;

    switch (uop.kind) {
      case MKind::Imm:
        writeDst(uop.dst, uop.imm);
        break;
      case MKind::Mov:
        writeDst(uop.dst, reg(uop.srcs[0]));
        break;
      case MKind::Alu: {
        const int64_t a = reg(uop.srcs[0]);
        const int64_t b = reg(uop.srcs[1]);
        int64_t out = 0;
        switch (uop.alu) {
          case AluOp::Add: out = arith::javaAdd(a, b); break;
          case AluOp::Sub: out = arith::javaSub(a, b); break;
          case AluOp::Mul:
            out = arith::javaMul(a, b);
            t.lat = LatClass::Mul;
            break;
          case AluOp::Div:
            if (b == 0)
                raiseTrap(ctx, TrapKind::DivideByZero, uop);
            out = arith::javaDiv(a, b);
            t.lat = LatClass::Div;
            break;
          case AluOp::Rem:
            if (b == 0)
                raiseTrap(ctx, TrapKind::DivideByZero, uop);
            out = arith::javaRem(a, b);
            t.lat = LatClass::Div;
            break;
          case AluOp::And: out = a & b; break;
          case AluOp::Or: out = a | b; break;
          case AluOp::Xor: out = a ^ b; break;
          case AluOp::Shl: out = arith::javaShl(a, b); break;
          case AluOp::Shr: out = arith::javaShr(a, b); break;
          case AluOp::CmpEq: out = a == b; break;
          case AluOp::CmpNe: out = a != b; break;
          case AluOp::CmpLt: out = a < b; break;
          case AluOp::CmpLe: out = a <= b; break;
          case AluOp::CmpGt: out = a > b; break;
          case AluOp::CmpGe: out = a >= b; break;
          case AluOp::CmpULt:
            out = static_cast<uint64_t>(a) < static_cast<uint64_t>(b);
            break;
        }
        writeDst(uop.dst, out);
        break;
      }

      case MKind::Load: {
        const auto base = checkRef(ctx, reg(uop.srcs[0]), uop);
        uint64_t addr = base + static_cast<uint64_t>(uop.imm);
        if (uop.srcs.size() > 1)
            addr += static_cast<uint64_t>(reg(uop.srcs[1]));
        t.isLoad = true;
        t.lat = LatClass::Load;
        t.memAddr = addr;
        writeDst(uop.dst, memRead(ctx, addr));
        break;
      }
      case MKind::Store: {
        const auto base = checkRef(ctx, reg(uop.srcs[0]), uop);
        uint64_t addr = base + static_cast<uint64_t>(uop.imm);
        if (uop.srcs.size() > 2)
            addr += static_cast<uint64_t>(reg(uop.srcs[1]));
        const int64_t value = reg(uop.srcs.back());
        t.isStore = true;
        t.lat = LatClass::Store;
        t.memAddr = addr;
        AREGION_ASSERT(heapImpl.inBounds(addr) || ctx.spec.active,
                       "non-speculative wild store");
        memWrite(ctx, addr, value);
        break;
      }

      case MKind::Br: {
        const bool cond = reg(uop.srcs[0]) != 0;
        const bool take = uop.brIfZero ? !cond : cond;
        t.isBranch = true;
        t.lat = LatClass::Branch;
        t.taken = take;
        if (take) {
            next_pc = uop.target;
            t.targetPc = globalPc(frame.fn->methodId, uop.target);
        } else {
            t.targetPc = pc + 1;
        }
        break;
      }
      case MKind::Jmp:
        next_pc = uop.target;
        break;

      case MKind::CallDirect:
      case MKind::CallIndirect: {
        AREGION_ASSERT(!ctx.spec.active,
                       "call inside atomic region");
        vm::MethodId callee;
        std::vector<int64_t> &argv = ctx.argScratch;
        argv.clear();
        if (uop.kind == MKind::CallDirect) {
            callee = uop.aux;
            for (MReg r : uop.srcs)
                argv.push_back(reg(r));
        } else {
            callee = static_cast<vm::MethodId>(reg(uop.srcs[0]));
            AREGION_ASSERT(callee >= 0 &&
                           callee < mp.prog->numMethods(),
                           "indirect call to bad method id ", callee);
            t.indirect = true;
            t.targetPc = globalPc(callee, 0);
            for (size_t i = 1; i < uop.srcs.size(); ++i)
                argv.push_back(reg(uop.srcs[i]));
        }
        frame.pc = next_pc;     // return continuation
        if (tracing)
            pushTrace(t);
        invoke(ctx, callee, argv.data(), argv.size(), uop.dst,
               t.seq);
        return;
      }
      case MKind::Ret: {
        AREGION_ASSERT(!ctx.spec.active,
                       "return inside atomic region");
        std::optional<int64_t> value;
        if (!uop.srcs.empty())
            value = reg(uop.srcs[0]);
        const MReg ret_dst = frame.retDst;
        --ctx.depth;
        if (ctx.depth == 0) {
            ctx.finished = true;
        } else if (ret_dst != NO_MREG) {
            AREGION_ASSERT(value.has_value(),
                           "void return into destination");
            Frame &caller = ctx.top();
            caller.regs[static_cast<size_t>(ret_dst)] = *value;
            if (tracing) {
                caller.lastWriter[static_cast<size_t>(ret_dst)] =
                    t.seq;
            }
        }
        if (tracing)
            pushTrace(t);
        return;
      }

      case MKind::Cas: {
        const auto base = checkRef(ctx, reg(uop.srcs[0]), uop);
        const uint64_t addr = base + static_cast<uint64_t>(uop.imm);
        t.isLoad = true;
        t.isStore = true;
        t.serializing = true;
        t.lat = LatClass::Serial;
        t.memAddr = addr;
        const int64_t old = memRead(ctx, addr);
        if (old == 0) {
            memWrite(ctx, addr, reg(uop.srcs[1]));
            if (ctx.id == 0)
                result.monitorFastEnters++;
        }
        writeDst(uop.dst, old);
        break;
      }
      case MKind::TidWord:
        writeDst(uop.dst, layout::lockWord(ctx.id, 1));
        break;
      case MKind::LockSlow: {
        if (ctx.spec.active)
            throw RegionAbort{AbortCause::Exception, -1};
        const auto obj = checkRef(ctx, reg(uop.srcs[0]), uop);
        const uint64_t lock_addr = obj + layout::HDR_LOCK;
        const int64_t word = heapImpl.load(lock_addr);
        const int owner = layout::lockOwner(word);
        t.serializing = true;
        t.lat = LatClass::Serial;
        if (owner == -1) {
            memWrite(ctx, lock_addr, layout::lockWord(ctx.id, 1));
        } else if (owner == ctx.id) {
            memWrite(ctx, lock_addr, layout::lockWord(
                ctx.id, layout::lockDepth(word) + 1));
        } else {
            // Stay blocked at this uop; the scheduler retries.
            ctx.blockedOn = obj;
            return;
        }
        ctx.blockedOn = 0;
        break;
      }
      case MKind::UnlockSlow: {
        if (ctx.spec.active)
            throw RegionAbort{AbortCause::Exception, -1};
        const auto obj = checkRef(ctx, reg(uop.srcs[0]), uop);
        const uint64_t lock_addr = obj + layout::HDR_LOCK;
        const int64_t word = heapImpl.load(lock_addr);
        AREGION_ASSERT(layout::lockOwner(word) == ctx.id,
                       "unlock by non-owner");
        const int64_t depth = layout::lockDepth(word) - 1;
        t.serializing = true;
        t.lat = LatClass::Serial;
        memWrite(ctx, lock_addr,
                 depth == 0 ? 0 : layout::lockWord(ctx.id, depth));
        break;
      }

      case MKind::Alloc: {
        uint64_t addr;
        if (uop.imm == 0) {
            const int fields = heapImpl.fieldCount(uop.aux);
            addr = heapImpl.allocRaw(static_cast<uint64_t>(
                layout::OBJ_FIELD_BASE + fields));
            memWrite(ctx, addr + layout::HDR_CLASS, uop.aux);
        } else {
            const int64_t len = reg(uop.srcs[0]);
            if (len < 0)
                raiseTrap(ctx, TrapKind::NegativeArraySize, uop);
            addr = heapImpl.allocRaw(static_cast<uint64_t>(
                layout::ARR_ELEM_BASE + len));
            memWrite(ctx, addr + layout::HDR_CLASS,
                     layout::ARRAY_CLASS);
            memWrite(ctx, addr + layout::ARR_LEN, len);
        }
        t.isStore = true;
        t.lat = LatClass::Store;
        t.memAddr = addr;
        writeDst(uop.dst, static_cast<int64_t>(addr));
        break;
      }

      case MKind::YieldLoad: {
        const uint64_t addr = heapImpl.yieldFlagAddr(ctx.id);
        t.isLoad = true;
        t.lat = LatClass::Load;
        t.memAddr = addr;
        writeDst(uop.dst, memRead(ctx, addr));
        break;
      }

      case MKind::Print:
        if (ctx.spec.active)
            throw RegionAbort{AbortCause::Io, -1};
        result.output.push_back(reg(uop.srcs[0]));
        break;
      case MKind::Marker:
        if (ctx.spec.active)
            throw RegionAbort{AbortCause::Io, -1};
        if (ctx.id == 0) {
            result.markers.push_back(
                {uop.imm,
                 result.executedUops - result.discardedUops});
            if (sink) {
                flushTrace();
                sink->marker(uop.imm);
            }
        }
        break;
      case MKind::Spawn: {
        if (ctx.spec.active)
            throw RegionAbort{AbortCause::Io, -1};
        AREGION_ASSERT(ctxs.size() <
                           static_cast<size_t>(config.maxContexts),
                       "context limit exceeded");
        std::vector<int64_t> &argv = ctx.argScratch;
        argv.clear();
        for (MReg r : uop.srcs)
            argv.push_back(reg(r));
        // ctxs is reserved to maxContexts up front, so this never
        // reallocates under the live `ctx`/`frame` references.
        ctxs.emplace_back();
        Ctx &fresh = ctxs.back();
        fresh.id = static_cast<int>(ctxs.size()) - 1;
        initCtx(fresh);
        invoke(fresh, uop.aux, argv.data(), argv.size(), NO_MREG, 0);
        break;
      }

      case MKind::Trap:
        raiseTrap(ctx, static_cast<TrapKind>(uop.aux), uop);
        break;

      case MKind::ABegin: {
        AREGION_ASSERT(!ctx.spec.active, "nested atomic region");
        // Livelock guard engaged: take the non-speculative
        // alternate path directly, probing speculation again every
        // 64th entry (commitRegion lifts the suppression).
        if (ctx.specSuppressed &&
            ++ctx.suppressedEntries % 64 != 0) {
            result.specSuppressedEntries++;
            next_pc = uop.target;
            break;
        }
        Spec &spec = ctx.spec;
        spec.active = true;
        spec.regionId = uop.aux;
        spec.method = frame.fn->methodId;
        spec.altPc = uop.target;
        spec.beginPc = pc;
        spec.uops = 0;
        spec.capLines = config.l1Lines;
        spec.regsSnapshot = frame.regs;
        spec.writersSnapshot = frame.lastWriter;
        spec.storeBuf.beginEpoch();
        spec.readLines.beginEpoch();
        spec.writeLines.beginEpoch();
        spec.setOccupancy.beginEpoch();
        spec.stats = &result.regions[{spec.method, spec.regionId}];
        spec.stats->entries++;
        result.regionEntries++;
        t.region = RegionEvent::Begin;
        t.regionId = uop.aux;
        if (oracle) {
            oracle->captureBegin(ctx.id, ctxs.size(), frame.regs,
                                 uop.target, heapImpl);
        }
        if (injectOn) {
            // Artificial capacity pressure: shrink this region's
            // effective line budget (payload = lines; default one
            // way's worth, which overflows almost immediately).
            if (fpCapacity && fpCapacity->evaluate()) {
                result.injectedCapacity++;
                const int64_t lines = fpCapacity->value();
                spec.capLines =
                    lines > 0 ? static_cast<int>(std::min<int64_t>(
                                    lines, config.l1Lines))
                              : config.l1Assoc;
            }
            // Forced assert failure: the region aborts explicitly
            // before its first instruction, as if a compiler assert
            // at the region head fired (payload = assert id).
            if (fpAssert && fpAssert->evaluate()) {
                result.injectedAsserts++;
                const int64_t id = fpAssert->value();
                throw RegionAbort{AbortCause::Explicit,
                                  id > 0 ? static_cast<int>(id) : -1};
            }
        }
        break;
      }
      case MKind::AEnd:
        AREGION_ASSERT(ctx.spec.active,
                       "aregion_end without begin");
        if (injectOn) {
            // Injected commit latency: hold the region open for a
            // stall (payload = steps; default one quantum) before
            // re-executing this AEnd, so other contexts commit or
            // conflict into the window. One draw per region.
            if (fpCommitStall && !ctx.commitStalled) {
                ctx.commitStalled = true;
                if (fpCommitStall->evaluate()) {
                    result.injectedCommitStalls++;
                    const int64_t steps = fpCommitStall->value();
                    ctx.stallSteps =
                        steps > 0 ? static_cast<uint64_t>(steps)
                                  : config.quantum;
                    return;     // pc unchanged; AEnd retries
                }
            }
            // Forced conflict: the commit point loses an ownership
            // race that real contention would have produced.
            if (fpConflict && fpConflict->evaluate()) {
                result.injectedConflicts++;
                throw RegionAbort{AbortCause::Conflict, -1};
            }
        }
        t.region = RegionEvent::End;
        t.regionId = uop.aux;
        frame.pc = next_pc;
        if (tracing)
            pushTrace(t);
        commitRegion(ctx);
        return;
      case MKind::AAbort:
        throw RegionAbort{AbortCause::Explicit, uop.aux};

      case MKind::Nop:
        break;
    }

    frame.pc = next_pc;
    if (tracing)
        pushTrace(t);
}

void
Machine::step(Ctx &ctx)
{
    // Asynchronous conflict aborts land between instructions — and
    // take priority over stalls, so a conflict arriving while a
    // commit is artificially held open kills the region.
    if (ctx.pendingAbort) {
        const AbortCause cause = *ctx.pendingAbort;
        ctx.pendingAbort.reset();
        if (ctx.spec.active) {
            doAbort(ctx, cause, -1,
                    globalPc(ctx.top().fn->methodId, ctx.top().pc));
            return;
        }
    }

    // Stalled (injected commit latency or contention backoff): burn
    // the step. It counts as machine progress so the deadlock
    // detector and the uop budget both see the stall, but it does
    // not tick the interrupt clock or the executed-uop counters.
    if (ctx.stallSteps > 0) {
        --ctx.stallSteps;
        ++machineUops;
        result.allContextUops++;
        return;
    }

    Frame &frame = ctx.top();
    const auto &code = frame.fn->code;
    AREGION_ASSERT(frame.pc >= 0 &&
                   static_cast<size_t>(frame.pc) < code.size(),
                   "machine pc fell off ", frame.fn->name);
    const MUop &uop = code[static_cast<size_t>(frame.pc)];

    // Blocked on a monitor: retry only when it may be free.
    if (ctx.blockedOn != 0) {
        const int64_t word =
            heapImpl.load(ctx.blockedOn + layout::HDR_LOCK);
        const int owner = layout::lockOwner(word);
        if (owner != -1 && owner != ctx.id)
            return;             // still held elsewhere
        ctx.blockedOn = 0;
    }

    const uint64_t pc = globalPc(frame.fn->methodId, frame.pc);
    ++machineUops;
    --interruptCountdown;
    result.allContextUops++;
    if (ctx.id == 0)
        result.executedUops++;
    if (ctx.spec.active)
        ctx.spec.uops++;

    try {
        execute(ctx, uop, pc);
    } catch (const RegionAbort &abort) {
        AREGION_ASSERT(ctx.spec.active,
                       "region abort outside region");
        // An interrupt slot coinciding with an abort is absorbed by
        // the abort (the region is already gone).
        if (interruptCountdown == 0)
            interruptCountdown = config.interruptPeriod;
        doAbort(ctx, abort.cause, abort.abortId, pc);
        return;
    }

    // Timer interrupt: aborts any in-flight region on this context.
    if (interruptCountdown == 0) {
        interruptCountdown = config.interruptPeriod;
        if (ctx.spec.active)
            doAbort(ctx, AbortCause::Interrupt, -1, pc);
    }

    // Injected spurious interrupt/context switch: one failpoint hit
    // per speculative uop, so `p` rates scale with region length.
    if (injectOn && fpInterrupt && ctx.spec.active &&
        fpInterrupt->evaluate()) {
        result.injectedInterrupts++;
        doAbort(ctx, AbortCause::Interrupt, -1, pc);
    }
}

void
Machine::publishTelemetry()
{
    namespace keys = telemetry::keys;
    auto &reg = telemetry::Registry::global();

    // Register every cause counter even when zero so each snapshot
    // carries the full cause vector.
    uint64_t total_aborts = 0;
    uint64_t by_cause[kNumAbortCauses] = {};
    for (const auto &[key, stats] : result.regions) {
        for (size_t c = 0; c < kNumAbortCauses; ++c)
            by_cause[c] += stats.abortsByCause[c];
    }
    for (size_t c = 0; c < kNumAbortCauses; ++c) {
        reg.add(keys::kMachineAbortByCause[c], by_cause[c]);
        total_aborts += by_cause[c];
    }
    reg.add(keys::kMachineAbortTotal, total_aborts);

    // Injection/guard counters only exist when the features are on,
    // so default runs register nothing new.
    if (injectOn) {
        reg.add(keys::kMachineInjectInterrupt,
                result.injectedInterrupts);
        reg.add(keys::kMachineInjectCapacity, result.injectedCapacity);
        reg.add(keys::kMachineInjectAssert, result.injectedAsserts);
        reg.add(keys::kMachineInjectConflict,
                result.injectedConflicts);
        reg.add(keys::kMachineInjectCommitStall,
                result.injectedCommitStalls);
        reg.add(keys::kMachineInjectTotal,
                result.injectedInterrupts + result.injectedCapacity +
                    result.injectedAsserts +
                    result.injectedConflicts +
                    result.injectedCommitStalls);
        // The two negative-self-test hooks register their counters
        // only when their own failpoint is armed, so runs arming the
        // classic injectors see an unchanged key set.
        if (fpDivergence) {
            reg.add(keys::kOracleInjectDivergence,
                    result.injectedDivergences);
        }
        if (fpLeak)
            reg.add(keys::kMachineInjectLeak, result.injectedLeaks);
    }
    // Bisimulation oracle counters exist only when the oracle is
    // attached (attach-only, like the RollbackOracle), keeping
    // default runs' telemetry byte-identical.
    if (bisim) {
        reg.add(keys::kOracleBisimChecks, bisim->checks());
        reg.add(keys::kOracleBisimReplays, bisim->replays());
        reg.add(keys::kOracleBisimUops, bisim->replayedUops());
        reg.add(keys::kOracleBisimDivergences,
                bisim->divergences().size() +
                    bisim->suppressedReports());
    }
    if (config.maxConsecutiveAborts > 0) {
        reg.add(keys::kMachineSpecSuppressed,
                result.specSuppressedEntries);
        reg.add(keys::kMachineLivelockTrips, result.livelockTrips);
    }

    reg.add(keys::kMachineRegionEntries, result.regionEntries);
    reg.add(keys::kMachineRegionCommits, result.regionCommits);
    reg.add(keys::kMachineRegionUops, result.regionUopsRetired);
    reg.add(keys::kMachineUopsRetired, result.retiredUops);
    reg.add(keys::kMachineUopsExecuted, result.executedUops);
    reg.add(keys::kMachineUopsDiscarded, result.discardedUops);
    reg.add(keys::kMachineUopsAllContexts, result.allContextUops);
    reg.add(keys::kMachineMonitorFastEnters,
            result.monitorFastEnters);
    reg.add(keys::kMachineRuns, 1);
    reg.add(keys::kMachineBatchFlushes, batchFlushes);
    reg.add(keys::kMachineBatchUops, batchUops);

    // Histograms go through the registry's one locked write path;
    // everything above is an atomic add. Both are safe under the
    // parallel experiment driver.
    Histogram size_local;
    Histogram fp_local;
    for (const auto &[key, stats] : result.regions) {
        size_local.merge(stats.dynamicSize);
        fp_local.merge(stats.footprintLines);
    }
    reg.merge(keys::kMachineRegionSize, size_local);
    reg.merge(keys::kMachineRegionFootprint, fp_local);
    reg.merge(keys::kMachineRegionReadLines, readLinesLocal);
    reg.merge(keys::kMachineRegionWriteLines, writeLinesLocal);
}

MachineResult
Machine::run(uint64_t max_uops)
{
    telemetry::ScopedSpan span("machine.run");
    // Resolve failpoint handles once; with nothing armed the hooks
    // reduce to a single always-false branch on `injectOn`.
    auto &fps = failpoint::Registry::global();
    if (fps.anyArmed()) {
        fpInterrupt = fps.find(failpoint::kMachineInterrupt);
        fpCapacity = fps.find(failpoint::kMachineCapacity);
        fpAssert = fps.find(failpoint::kMachineAssert);
        fpConflict = fps.find(failpoint::kMachineConflict);
        fpCommitStall = fps.find(failpoint::kMachineCommitStall);
        fpDivergence = fps.find(failpoint::kOracleDivergence);
        fpLeak = fps.find(failpoint::kMachineLeak);
    } else {
        fpInterrupt = fpCapacity = fpAssert = nullptr;
        fpConflict = fpCommitStall = nullptr;
        fpDivergence = fpLeak = nullptr;
    }
    injectOn = fpInterrupt || fpCapacity || fpAssert || fpConflict ||
               fpCommitStall || fpDivergence || fpLeak;

    result = MachineResult{};
    ctxs.clear();
    // Spawn pushes new contexts while references into `ctxs` are
    // live, so the vector must never reallocate mid-run.
    ctxs.reserve(static_cast<size_t>(config.maxContexts));
    machineUops = 0;
    tracedSeq = 0;
    interruptCountdown = config.interruptPeriod;
    batch.clear();
    batchFlushes = 0;
    batchUops = 0;
    readLinesLocal = Histogram{};
    writeLinesLocal = Histogram{};

    ctxs.emplace_back();
    ctxs[0].id = 0;
    initCtx(ctxs[0]);
    invoke(ctxs[0], mp.prog->mainMethod, nullptr, 0, NO_MREG, 0);

    if (oracle)
        oracle->onRunStart(heapImpl);

    try {
        while (!ctxs[0].finished && machineUops < max_uops) {
            bool progressed = false;
            for (size_t c = 0; c < ctxs.size(); ++c) {
                Ctx &ctx = ctxs[c];
                const uint64_t before = machineUops;
                for (uint64_t q = 0; q < config.quantum; ++q) {
                    if (ctx.finished || ctxs[0].finished)
                        break;
                    step(ctx);
                    if (ctx.blockedOn != 0)
                        break;
                }
                if (machineUops != before)
                    progressed = true;
            }
            if (!progressed && !ctxs[0].finished) {
                throw Trap(TrapKind::Deadlock, mp.prog->mainMethod,
                           0);
            }
        }
    } catch (const Trap &trap) {
        flushTrace();
        result.trap = trap;
        result.retiredUops =
            result.executedUops - result.discardedUops;
        publishTelemetry();
        return result;
    }

    flushTrace();
    result.completed = ctxs[0].finished;
    result.retiredUops = result.executedUops - result.discardedUops;
    publishTelemetry();
    return result;
}

} // namespace aregion::hw
