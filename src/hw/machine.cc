#include "hw/machine.hh"

#include "support/logging.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"
#include "vm/arith.hh"
#include "vm/layout.hh"

namespace aregion::hw {

namespace layout = vm::layout;
using vm::Trap;
using vm::TrapKind;

const char *
abortCauseName(AbortCause cause)
{
    switch (cause) {
      case AbortCause::Explicit: return "explicit";
      case AbortCause::Conflict: return "conflict";
      case AbortCause::Overflow: return "overflow";
      case AbortCause::Interrupt: return "interrupt";
      case AbortCause::Exception: return "exception";
      case AbortCause::Io: return "io";
    }
    return "<bad>";
}

uint64_t
MachineResult::outputChecksum() const
{
    uint64_t h = 1469598103934665603ULL;
    for (int64_t v : output) {
        for (int b = 0; b < 8; ++b) {
            h ^= static_cast<uint64_t>(v >> (b * 8)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

Machine::Machine(const MachineProgram &prog, const HwConfig &config_,
                 TraceSink *sink_, uint64_t max_words)
    : mp(prog), config(config_), sink(sink_),
      heapImpl(*prog.prog, max_words)
{
    // Cache registry slots once; commitRegion must not pay a string
    // lookup per commit.
    auto &reg = telemetry::Registry::global();
    readLinesHist = &reg.histogram(telemetry::keys::kMachineRegionReadLines);
    writeLinesHist =
        &reg.histogram(telemetry::keys::kMachineRegionWriteLines);
}

RegionRuntime &
Machine::regionStats(const Ctx &ctx)
{
    return result.regions[{ctx.spec->method, ctx.spec->regionId}];
}

void
Machine::trackSpecLine(Ctx &ctx, uint64_t line)
{
    Spec &spec = *ctx.spec;
    if (spec.readLines.count(line) || spec.writeLines.count(line))
        return;
    const int num_sets = config.l1Lines / config.l1Assoc;
    const uint64_t set = line % static_cast<uint64_t>(num_sets);
    const int occupancy = ++spec.setOccupancy[set];
    const auto total = spec.readLines.size() + spec.writeLines.size();
    if (occupancy > config.l1Assoc ||
        total + 1 > static_cast<size_t>(config.l1Lines)) {
        throw RegionAbort{AbortCause::Overflow, -1};
    }
}

void
Machine::signalConflicts(Ctx &writer_ctx, uint64_t line)
{
    for (Ctx &other : ctxs) {
        if (other.id == writer_ctx.id || !other.spec ||
            other.pendingAbort) {
            continue;
        }
        if (other.spec->readLines.count(line) ||
            other.spec->writeLines.count(line)) {
            other.pendingAbort = AbortCause::Conflict;
        }
    }
}

int64_t
Machine::memRead(Ctx &ctx, uint64_t addr)
{
    const uint64_t line = addr / static_cast<uint64_t>(
        config.lineWords);
    if (ctx.spec) {
        trackSpecLine(ctx, line);
        ctx.spec->readLines.insert(line);
        auto it = ctx.spec->storeBuf.find(addr);
        if (it != ctx.spec->storeBuf.end())
            return it->second;
        // Speculative wild loads (a postdominating check may not
        // have run yet) read as zero.
        if (!heapImpl.inBounds(addr))
            return 0;
        return heapImpl.load(addr);
    }
    return heapImpl.load(addr);
}

void
Machine::memWrite(Ctx &ctx, uint64_t addr, int64_t value)
{
    const uint64_t line = addr / static_cast<uint64_t>(
        config.lineWords);
    if (ctx.spec) {
        trackSpecLine(ctx, line);
        ctx.spec->writeLines.insert(line);
        ctx.spec->storeBuf[addr] = value;
        signalConflicts(ctx, line);
        return;
    }
    heapImpl.store(addr, value);
    signalConflicts(ctx, line);
}

uint64_t
Machine::checkRef(Ctx &ctx, int64_t value, const MUop &uop)
{
    if (value == 0)
        raiseTrap(ctx, TrapKind::NullPointer, uop);
    return static_cast<uint64_t>(value);
}

void
Machine::raiseTrap(Ctx &ctx, TrapKind kind, const MUop &uop)
{
    if (ctx.spec) {
        // Precise exceptions: abort first, re-raise non-speculatively.
        throw RegionAbort{AbortCause::Exception, -1};
    }
    throw Trap(kind, uop.bcMethod, uop.bcPc);
}

void
Machine::doAbort(Ctx &ctx, AbortCause cause, int abort_id,
                 uint64_t resolve_pc)
{
    AREGION_ASSERT(ctx.spec.has_value(), "abort without region");
    Spec &spec = *ctx.spec;

    RegionRuntime &stats = regionStats(ctx);
    stats.abortsByCause[static_cast<int>(cause)]++;
    if (cause == AbortCause::Explicit && abort_id >= 0)
        stats.abortsByAssert[abort_id]++;

    Frame &frame = ctx.stack.back();
    frame.regs = spec.regsSnapshot;
    frame.lastWriter = spec.writersSnapshot;
    frame.pc = spec.altPc;

    result.regionAborts++;
    if (ctx.id == 0) {
        result.discardedUops += spec.uops;
        if (sink)
            sink->abortFlush({cause, spec.uops, resolve_pc});
    }
    ctx.spec.reset();
}

void
Machine::commitRegion(Ctx &ctx)
{
    Spec &spec = *ctx.spec;
    for (const auto &[addr, value] : spec.storeBuf) {
        AREGION_ASSERT(heapImpl.inBounds(addr),
                       "commit of wild speculative store at ", addr);
        heapImpl.store(addr, value);
    }
    // Commit makes the region's writes visible: regions that started
    // after our buffered stores and read those lines must conflict.
    for (uint64_t line : spec.writeLines)
        signalConflicts(ctx, line);

    RegionRuntime &stats = regionStats(ctx);
    stats.commits++;
    stats.dynamicSize.add(static_cast<int64_t>(spec.uops));
    stats.footprintLines.add(static_cast<int64_t>(
        spec.readLines.size() + spec.writeLines.size()));
    // Read/write-set occupancy at commit (Section 6.2 footprint
    // split), recorded straight into the registry: the per-region
    // stats keep only the combined footprint.
    readLinesHist->add(static_cast<int64_t>(spec.readLines.size()));
    writeLinesHist->add(static_cast<int64_t>(spec.writeLines.size()));
    result.regionCommits++;
    if (ctx.id == 0)
        result.regionUopsRetired += spec.uops;
    ctx.spec.reset();
}

void
Machine::invoke(Ctx &ctx, vm::MethodId callee,
                const std::vector<int64_t> &argv, MReg ret_dst,
                uint64_t call_seq)
{
    const MachineFunction &fn = mp.func(callee);
    AREGION_ASSERT(static_cast<int>(argv.size()) == fn.numArgs,
                   "machine call arity mismatch into ", fn.name);
    Frame frame;
    frame.fn = &fn;
    frame.regs.assign(static_cast<size_t>(fn.numRegs), 0);
    frame.lastWriter.assign(static_cast<size_t>(fn.numRegs), 0);
    for (size_t i = 0; i < argv.size(); ++i) {
        frame.regs[i] = argv[i];
        frame.lastWriter[i] = call_seq;
    }
    frame.retDst = ret_dst;
    ctx.stack.push_back(std::move(frame));
}

void
Machine::execute(Ctx &ctx, const MUop &uop, uint64_t pc)
{
    namespace arith = vm::arith;
    Frame &frame = ctx.stack.back();
    const bool traced = ctx.id == 0;

    auto reg = [&](MReg r) -> int64_t & {
        AREGION_ASSERT(r >= 0 &&
                       static_cast<size_t>(r) < frame.regs.size(),
                       "machine register out of range");
        return frame.regs[static_cast<size_t>(r)];
    };

    TraceUop t;
    if (traced) {
        t.seq = ++tracedSeq;
        t.pc = pc;
        t.numSrcs = static_cast<int>(
            std::min<size_t>(uop.srcs.size(), 3));
        for (int i = 0; i < t.numSrcs; ++i) {
            t.srcSeq[i] = frame.lastWriter[
                static_cast<size_t>(uop.srcs[static_cast<size_t>(i)])];
        }
    }
    auto writeDst = [&](MReg dst, int64_t value) {
        reg(dst) = value;
        frame.lastWriter[static_cast<size_t>(dst)] = t.seq;
    };

    int next_pc = frame.pc + 1;

    switch (uop.kind) {
      case MKind::Imm:
        writeDst(uop.dst, uop.imm);
        break;
      case MKind::Mov:
        writeDst(uop.dst, reg(uop.srcs[0]));
        break;
      case MKind::Alu: {
        const int64_t a = reg(uop.srcs[0]);
        const int64_t b = reg(uop.srcs[1]);
        int64_t out = 0;
        switch (uop.alu) {
          case AluOp::Add: out = arith::javaAdd(a, b); break;
          case AluOp::Sub: out = arith::javaSub(a, b); break;
          case AluOp::Mul:
            out = arith::javaMul(a, b);
            t.lat = LatClass::Mul;
            break;
          case AluOp::Div:
            if (b == 0)
                raiseTrap(ctx, TrapKind::DivideByZero, uop);
            out = arith::javaDiv(a, b);
            t.lat = LatClass::Div;
            break;
          case AluOp::Rem:
            if (b == 0)
                raiseTrap(ctx, TrapKind::DivideByZero, uop);
            out = arith::javaRem(a, b);
            t.lat = LatClass::Div;
            break;
          case AluOp::And: out = a & b; break;
          case AluOp::Or: out = a | b; break;
          case AluOp::Xor: out = a ^ b; break;
          case AluOp::Shl: out = arith::javaShl(a, b); break;
          case AluOp::Shr: out = arith::javaShr(a, b); break;
          case AluOp::CmpEq: out = a == b; break;
          case AluOp::CmpNe: out = a != b; break;
          case AluOp::CmpLt: out = a < b; break;
          case AluOp::CmpLe: out = a <= b; break;
          case AluOp::CmpGt: out = a > b; break;
          case AluOp::CmpGe: out = a >= b; break;
          case AluOp::CmpULt:
            out = static_cast<uint64_t>(a) < static_cast<uint64_t>(b);
            break;
        }
        writeDst(uop.dst, out);
        break;
      }

      case MKind::Load: {
        const auto base = checkRef(ctx, reg(uop.srcs[0]), uop);
        uint64_t addr = base + static_cast<uint64_t>(uop.imm);
        if (uop.srcs.size() > 1)
            addr += static_cast<uint64_t>(reg(uop.srcs[1]));
        t.isLoad = true;
        t.lat = LatClass::Load;
        t.memAddr = addr;
        writeDst(uop.dst, memRead(ctx, addr));
        break;
      }
      case MKind::Store: {
        const auto base = checkRef(ctx, reg(uop.srcs[0]), uop);
        uint64_t addr = base + static_cast<uint64_t>(uop.imm);
        if (uop.srcs.size() > 2)
            addr += static_cast<uint64_t>(reg(uop.srcs[1]));
        const int64_t value = reg(uop.srcs.back());
        t.isStore = true;
        t.lat = LatClass::Store;
        t.memAddr = addr;
        AREGION_ASSERT(heapImpl.inBounds(addr) ||
                       ctx.spec.has_value(),
                       "non-speculative wild store");
        memWrite(ctx, addr, value);
        break;
      }

      case MKind::Br: {
        const bool cond = reg(uop.srcs[0]) != 0;
        const bool take = uop.brIfZero ? !cond : cond;
        t.isBranch = true;
        t.lat = LatClass::Branch;
        t.taken = take;
        if (take) {
            next_pc = uop.target;
            t.targetPc = globalPc(frame.fn->methodId, uop.target);
        } else {
            t.targetPc = pc + 1;
        }
        break;
      }
      case MKind::Jmp:
        next_pc = uop.target;
        break;

      case MKind::CallDirect:
      case MKind::CallIndirect: {
        AREGION_ASSERT(!ctx.spec.has_value(),
                       "call inside atomic region");
        vm::MethodId callee;
        std::vector<int64_t> argv;
        if (uop.kind == MKind::CallDirect) {
            callee = uop.aux;
            argv.reserve(uop.srcs.size());
            for (MReg r : uop.srcs)
                argv.push_back(reg(r));
        } else {
            callee = static_cast<vm::MethodId>(reg(uop.srcs[0]));
            AREGION_ASSERT(callee >= 0 &&
                           callee < mp.prog->numMethods(),
                           "indirect call to bad method id ", callee);
            t.indirect = true;
            t.targetPc = globalPc(callee, 0);
            argv.reserve(uop.srcs.size() - 1);
            for (size_t i = 1; i < uop.srcs.size(); ++i)
                argv.push_back(reg(uop.srcs[i]));
        }
        frame.pc = next_pc;     // return continuation
        if (traced && sink)
            sink->uop(t);
        invoke(ctx, callee, argv, uop.dst, t.seq);
        return;
      }
      case MKind::Ret: {
        AREGION_ASSERT(!ctx.spec.has_value(),
                       "return inside atomic region");
        std::optional<int64_t> value;
        if (!uop.srcs.empty())
            value = reg(uop.srcs[0]);
        const MReg ret_dst = ctx.stack.back().retDst;
        ctx.stack.pop_back();
        if (ctx.stack.empty()) {
            ctx.finished = true;
        } else if (ret_dst != NO_MREG) {
            AREGION_ASSERT(value.has_value(),
                           "void return into destination");
            Frame &caller = ctx.stack.back();
            caller.regs[static_cast<size_t>(ret_dst)] = *value;
            caller.lastWriter[static_cast<size_t>(ret_dst)] = t.seq;
        }
        if (traced && sink)
            sink->uop(t);
        return;
      }

      case MKind::Cas: {
        const auto base = checkRef(ctx, reg(uop.srcs[0]), uop);
        const uint64_t addr = base + static_cast<uint64_t>(uop.imm);
        t.isLoad = true;
        t.isStore = true;
        t.serializing = true;
        t.lat = LatClass::Serial;
        t.memAddr = addr;
        const int64_t old = memRead(ctx, addr);
        if (old == 0) {
            memWrite(ctx, addr, reg(uop.srcs[1]));
            if (ctx.id == 0)
                result.monitorFastEnters++;
        }
        writeDst(uop.dst, old);
        break;
      }
      case MKind::TidWord:
        writeDst(uop.dst, layout::lockWord(ctx.id, 1));
        break;
      case MKind::LockSlow: {
        if (ctx.spec)
            throw RegionAbort{AbortCause::Exception, -1};
        const auto obj = checkRef(ctx, reg(uop.srcs[0]), uop);
        const uint64_t lock_addr = obj + layout::HDR_LOCK;
        const int64_t word = heapImpl.load(lock_addr);
        const int owner = layout::lockOwner(word);
        t.serializing = true;
        t.lat = LatClass::Serial;
        if (owner == -1) {
            memWrite(ctx, lock_addr, layout::lockWord(ctx.id, 1));
        } else if (owner == ctx.id) {
            memWrite(ctx, lock_addr, layout::lockWord(
                ctx.id, layout::lockDepth(word) + 1));
        } else {
            // Stay blocked at this uop; the scheduler retries.
            ctx.blockedOn = obj;
            return;
        }
        ctx.blockedOn = 0;
        break;
      }
      case MKind::UnlockSlow: {
        if (ctx.spec)
            throw RegionAbort{AbortCause::Exception, -1};
        const auto obj = checkRef(ctx, reg(uop.srcs[0]), uop);
        const uint64_t lock_addr = obj + layout::HDR_LOCK;
        const int64_t word = heapImpl.load(lock_addr);
        AREGION_ASSERT(layout::lockOwner(word) == ctx.id,
                       "unlock by non-owner");
        const int64_t depth = layout::lockDepth(word) - 1;
        t.serializing = true;
        t.lat = LatClass::Serial;
        memWrite(ctx, lock_addr,
                 depth == 0 ? 0 : layout::lockWord(ctx.id, depth));
        break;
      }

      case MKind::Alloc: {
        uint64_t addr;
        if (uop.imm == 0) {
            const int fields = heapImpl.fieldCount(uop.aux);
            addr = heapImpl.allocRaw(static_cast<uint64_t>(
                layout::OBJ_FIELD_BASE + fields));
            memWrite(ctx, addr + layout::HDR_CLASS, uop.aux);
        } else {
            const int64_t len = reg(uop.srcs[0]);
            if (len < 0)
                raiseTrap(ctx, TrapKind::NegativeArraySize, uop);
            addr = heapImpl.allocRaw(static_cast<uint64_t>(
                layout::ARR_ELEM_BASE + len));
            memWrite(ctx, addr + layout::HDR_CLASS,
                     layout::ARRAY_CLASS);
            memWrite(ctx, addr + layout::ARR_LEN, len);
        }
        t.isStore = true;
        t.lat = LatClass::Store;
        t.memAddr = addr;
        writeDst(uop.dst, static_cast<int64_t>(addr));
        break;
      }

      case MKind::YieldLoad: {
        const uint64_t addr = heapImpl.yieldFlagAddr(ctx.id);
        t.isLoad = true;
        t.lat = LatClass::Load;
        t.memAddr = addr;
        writeDst(uop.dst, memRead(ctx, addr));
        break;
      }

      case MKind::Print:
        if (ctx.spec)
            throw RegionAbort{AbortCause::Io, -1};
        result.output.push_back(reg(uop.srcs[0]));
        break;
      case MKind::Marker:
        if (ctx.spec)
            throw RegionAbort{AbortCause::Io, -1};
        if (ctx.id == 0) {
            result.markers.push_back(
                {uop.imm,
                 result.executedUops - result.discardedUops});
            if (sink)
                sink->marker(uop.imm);
        }
        break;
      case MKind::Spawn: {
        if (ctx.spec)
            throw RegionAbort{AbortCause::Io, -1};
        AREGION_ASSERT(ctxs.size() < layout::MAX_THREADS,
                       "context limit exceeded");
        std::vector<int64_t> argv;
        for (MReg r : uop.srcs)
            argv.push_back(reg(r));
        Ctx fresh;
        fresh.id = static_cast<int>(ctxs.size());
        ctxs.push_back(std::move(fresh));
        invoke(ctxs.back(), uop.aux, argv, NO_MREG, 0);
        break;
      }

      case MKind::Trap:
        raiseTrap(ctx, static_cast<TrapKind>(uop.aux), uop);
        break;

      case MKind::ABegin: {
        AREGION_ASSERT(!ctx.spec.has_value(), "nested atomic region");
        Spec spec;
        spec.regionId = uop.aux;
        spec.method = frame.fn->methodId;
        spec.altPc = uop.target;
        spec.beginPc = pc;
        spec.regsSnapshot = frame.regs;
        spec.writersSnapshot = frame.lastWriter;
        ctx.spec = std::move(spec);
        regionStats(ctx).entries++;
        result.regionEntries++;
        t.region = RegionEvent::Begin;
        t.regionId = uop.aux;
        break;
      }
      case MKind::AEnd:
        AREGION_ASSERT(ctx.spec.has_value(),
                       "aregion_end without begin");
        t.region = RegionEvent::End;
        t.regionId = uop.aux;
        frame.pc = next_pc;
        if (traced && sink)
            sink->uop(t);
        commitRegion(ctx);
        return;
      case MKind::AAbort:
        throw RegionAbort{AbortCause::Explicit, uop.aux};

      case MKind::Nop:
        break;
    }

    frame.pc = next_pc;
    if (traced && sink)
        sink->uop(t);
}

void
Machine::step(Ctx &ctx)
{
    // Asynchronous conflict aborts land between instructions.
    if (ctx.pendingAbort) {
        const AbortCause cause = *ctx.pendingAbort;
        ctx.pendingAbort.reset();
        if (ctx.spec) {
            doAbort(ctx, cause, -1,
                    globalPc(ctx.stack.back().fn->methodId,
                             ctx.stack.back().pc));
            return;
        }
    }

    Frame &frame = ctx.stack.back();
    const auto &code = frame.fn->code;
    AREGION_ASSERT(frame.pc >= 0 &&
                   static_cast<size_t>(frame.pc) < code.size(),
                   "machine pc fell off ", frame.fn->name);
    const MUop &uop = code[static_cast<size_t>(frame.pc)];

    // Blocked on a monitor: retry only when it may be free.
    if (ctx.blockedOn != 0) {
        const int64_t word =
            heapImpl.load(ctx.blockedOn + layout::HDR_LOCK);
        const int owner = layout::lockOwner(word);
        if (owner != -1 && owner != ctx.id)
            return;             // still held elsewhere
        ctx.blockedOn = 0;
    }

    const uint64_t pc = globalPc(frame.fn->methodId, frame.pc);
    ++machineUops;
    result.allContextUops++;
    if (ctx.id == 0)
        result.executedUops++;
    if (ctx.spec)
        ctx.spec->uops++;

    try {
        execute(ctx, uop, pc);
    } catch (const RegionAbort &abort) {
        AREGION_ASSERT(ctx.spec.has_value(),
                       "region abort outside region");
        doAbort(ctx, abort.cause, abort.abortId, pc);
        return;
    }

    // Timer interrupt: aborts any in-flight region on this context.
    if (machineUops % config.interruptPeriod == 0 && ctx.spec)
        doAbort(ctx, AbortCause::Interrupt, -1, pc);
}

void
Machine::publishTelemetry()
{
    namespace keys = telemetry::keys;
    auto &reg = telemetry::Registry::global();

    // Register all six cause counters even when zero so every
    // snapshot carries the full cause vector.
    uint64_t total_aborts = 0;
    uint64_t by_cause[6] = {0, 0, 0, 0, 0, 0};
    for (const auto &[key, stats] : result.regions) {
        for (int c = 0; c < 6; ++c)
            by_cause[c] += stats.abortsByCause[c];
    }
    for (int c = 0; c < 6; ++c) {
        reg.add(keys::kMachineAbortByCause[c], by_cause[c]);
        total_aborts += by_cause[c];
    }
    reg.add(keys::kMachineAbortTotal, total_aborts);

    reg.add(keys::kMachineRegionEntries, result.regionEntries);
    reg.add(keys::kMachineRegionCommits, result.regionCommits);
    reg.add(keys::kMachineRegionUops, result.regionUopsRetired);
    reg.add(keys::kMachineUopsRetired, result.retiredUops);
    reg.add(keys::kMachineUopsExecuted, result.executedUops);
    reg.add(keys::kMachineUopsDiscarded, result.discardedUops);
    reg.add(keys::kMachineUopsAllContexts, result.allContextUops);
    reg.add(keys::kMachineMonitorFastEnters,
            result.monitorFastEnters);
    reg.add(keys::kMachineRuns, 1);

    Histogram &size_hist = reg.histogram(keys::kMachineRegionSize);
    Histogram &fp_hist =
        reg.histogram(keys::kMachineRegionFootprint);
    for (const auto &[key, stats] : result.regions) {
        for (const auto &[value, weight] :
             stats.dynamicSize.buckets())
            size_hist.add(value, weight);
        for (const auto &[value, weight] :
             stats.footprintLines.buckets())
            fp_hist.add(value, weight);
    }
}

MachineResult
Machine::run(uint64_t max_uops)
{
    telemetry::ScopedSpan span("machine.run");
    result = MachineResult{};
    ctxs.clear();
    machineUops = 0;
    tracedSeq = 0;

    Ctx main;
    main.id = 0;
    ctxs.push_back(std::move(main));
    invoke(ctxs[0], mp.prog->mainMethod, {}, NO_MREG, 0);

    try {
        while (!ctxs[0].finished && machineUops < max_uops) {
            bool progressed = false;
            for (size_t c = 0; c < ctxs.size(); ++c) {
                const uint64_t before = machineUops;
                for (uint64_t q = 0; q < config.quantum; ++q) {
                    Ctx &ctx = ctxs[c];
                    if (ctx.finished || ctxs[0].finished)
                        break;
                    step(ctx);
                    if (ctx.blockedOn != 0)
                        break;
                }
                if (machineUops != before)
                    progressed = true;
            }
            if (!progressed && !ctxs[0].finished) {
                throw Trap(TrapKind::Deadlock, mp.prog->mainMethod,
                           0);
            }
        }
    } catch (const Trap &trap) {
        result.trap = trap;
        result.retiredUops =
            result.executedUops - result.discardedUops;
        publishTelemetry();
        return result;
    }

    result.completed = ctxs[0].finished;
    result.retiredUops = result.executedUops - result.discardedUops;
    publishTelemetry();
    return result;
}

} // namespace aregion::hw
