/**
 * @file
 * Flat, epoch-tagged containers for per-context speculative state.
 *
 * These are the machine simulator's hottest data structures (one set
 * per hardware context, reset in O(1) at every aregion_begin), kept
 * in their own header so the wraparound/tombstone stress tests can
 * exercise them directly — probe wraparound at the table mask
 * boundary, mid-epoch growth, and stale-epoch slot reuse are exactly
 * the cases a full machine run rarely reaches.
 *
 * Epoch tagging replaces tombstones: bumping `epoch` invalidates
 * every entry at once, and a slot whose tag differs from the current
 * epoch acts as empty for both probing and insertion. Consequently
 * the containers are valid only between beginEpoch() calls — epoch 0
 * would alias the zero-initialized slots.
 */

#ifndef AREGION_HW_SPEC_STATE_HH
#define AREGION_HW_SPEC_STATE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aregion::hw {

/** splitmix64-style avalanche for the open-addressing probes. */
inline uint64_t
specHashMix(uint64_t x)
{
    x *= 0x9e3779b97f4a7c15ull;
    x ^= x >> 32;
    return x;
}

/**
 * Speculative store buffer: open-addressing hash table keyed by
 * word address. Slots are epoch-tagged, so aregion_begin
 * invalidates every entry in O(1) without deallocating; `live`
 * lists the slots written this epoch in insertion order for the
 * commit drain.
 */
struct StoreBuffer
{
    struct Slot
    {
        uint64_t addr = 0;
        int64_t value = 0;
        uint64_t epoch = 0;
    };

    std::vector<Slot> slots;        ///< power-of-two size
    std::vector<uint32_t> live;     ///< slots used this epoch
    uint64_t mask = 0;
    uint64_t epoch = 0;

    void
    init(size_t capacity_pow2)
    {
        slots.assign(capacity_pow2, Slot{});
        live.clear();
        live.reserve(capacity_pow2);
        mask = capacity_pow2 - 1;
        epoch = 0;
    }

    void
    beginEpoch()
    {
        ++epoch;
        live.clear();
    }

    const int64_t *
    lookup(uint64_t addr) const
    {
        for (uint64_t i = specHashMix(addr) & mask;;
             i = (i + 1) & mask) {
            const Slot &s = slots[i];
            if (s.epoch != epoch)
                return nullptr;
            if (s.addr == addr)
                return &s.value;
        }
    }

    void
    put(uint64_t addr, int64_t value)
    {
        for (uint64_t i = specHashMix(addr) & mask;;
             i = (i + 1) & mask) {
            Slot &s = slots[i];
            if (s.epoch != epoch) {
                s.addr = addr;
                s.value = value;
                s.epoch = epoch;
                live.push_back(static_cast<uint32_t>(i));
                if (live.size() * 4 > slots.size() * 3)
                    grow();
                return;
            }
            if (s.addr == addr) {
                s.value = value;
                return;
            }
        }
    }

    void
    grow()
    {
        std::vector<Slot> old_slots = std::move(slots);
        std::vector<uint32_t> old_live = std::move(live);
        slots.assign(old_slots.size() * 2, Slot{});
        live.clear();
        live.reserve(slots.size());
        mask = slots.size() - 1;
        // Only this epoch's entries survive; stale epochs are dead.
        for (uint32_t idx : old_live) {
            const Slot &s = old_slots[idx];
            for (uint64_t i = specHashMix(s.addr) & mask;;
                 i = (i + 1) & mask) {
                Slot &d = slots[i];
                if (d.epoch != epoch) {
                    d = s;
                    live.push_back(static_cast<uint32_t>(i));
                    break;
                }
            }
        }
    }
};

/**
 * Hash set of L1 line numbers (the read/write sets of Section
 * 3.1), epoch-tagged like the store buffer. Capacity is fixed at
 * construction: the overflow abort bounds each set to l1Lines
 * distinct lines, so a table of next_pow2(2 * l1Lines) never
 * exceeds half load and never needs to grow. `items` keeps this
 * epoch's members for the commit walk.
 */
struct LineSet
{
    std::vector<uint64_t> keys;
    std::vector<uint64_t> epochs;
    std::vector<uint64_t> items;
    uint64_t mask = 0;
    uint64_t epoch = 0;

    void
    init(size_t capacity_pow2)
    {
        keys.assign(capacity_pow2, 0);
        epochs.assign(capacity_pow2, 0);
        items.clear();
        items.reserve(capacity_pow2 / 2);
        mask = capacity_pow2 - 1;
        epoch = 0;
    }

    void
    beginEpoch()
    {
        ++epoch;
        items.clear();
    }

    bool
    contains(uint64_t line) const
    {
        for (uint64_t i = specHashMix(line) & mask;;
             i = (i + 1) & mask) {
            if (epochs[i] != epoch)
                return false;
            if (keys[i] == line)
                return true;
        }
    }

    void
    insert(uint64_t line)
    {
        for (uint64_t i = specHashMix(line) & mask;;
             i = (i + 1) & mask) {
            if (epochs[i] != epoch) {
                epochs[i] = epoch;
                keys[i] = line;
                items.push_back(line);
                return;
            }
            if (keys[i] == line)
                return;
        }
    }

    size_t size() const { return items.size(); }
};

/** Per-L1-set speculative line counts for the associativity
 *  overflow check, indexed directly by set number. */
struct SetOccupancy
{
    std::vector<int> counts;
    std::vector<uint64_t> epochs;
    uint64_t epoch = 0;

    void
    init(size_t num_sets)
    {
        counts.assign(num_sets, 0);
        epochs.assign(num_sets, 0);
        epoch = 0;
    }

    void beginEpoch() { ++epoch; }

    int
    increment(uint64_t set)
    {
        if (epochs[set] != epoch) {
            epochs[set] = epoch;
            counts[set] = 0;
        }
        return ++counts[set];
    }
};

} // namespace aregion::hw

#endif // AREGION_HW_SPEC_STATE_HH
