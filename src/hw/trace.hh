/**
 * @file
 * Dynamic uop trace: the interface between the functional machine
 * simulator (producer) and the timing model (consumer).
 *
 * Each executed uop of the traced hardware context becomes one
 * TraceUop carrying its data dependences (producer sequence numbers),
 * memory address, branch outcome, and region events. Aborted regions'
 * uops are streamed as they execute (they occupy the pipeline) and
 * reconciled by the AbortEvent that follows.
 */

#ifndef AREGION_HW_TRACE_HH
#define AREGION_HW_TRACE_HH

#include <cstddef>
#include <cstdint>

namespace aregion::hw {

/** Latency/issue class of a uop. */
enum class LatClass : uint8_t {
    Int,        ///< 1-cycle ALU
    Mul,        ///< 3-cycle multiply
    Div,        ///< 20-cycle divide
    Load,
    Store,
    Branch,
    Serial,     ///< serializing (CAS, slow locks)
};

/**
 * Why a region aborted — the abort cause register of the paper's
 * Section 3.2, which software reads after rollback to distinguish
 * "my assert fired" (recompile the cold branch, Section 7) from
 * environmental aborts that merely retry. Order is load-bearing:
 * `RegionRuntime::abortsByCause` and the telemetry keys
 * `machine.abort.*` (telemetry_keys.hh, kMachineAbortByCause) index
 * by `static_cast<int>(cause)`.
 */
enum class AbortCause : uint8_t {
    Explicit,   ///< aregion_abort (a compiler assert fired, §4.1)
    Conflict,   ///< coherence conflict with another context (SLE, §5.2)
    Overflow,   ///< speculative footprint exceeded the L1 way limit (§3.1)
    Interrupt,  ///< timer interrupt while speculative (§3.2)
    Exception,  ///< trap or blocking operation while speculative
    Io,         ///< irrevocable operation reached speculatively
};

/** Number of AbortCause enumerators. Arrays indexed by cause
 *  (RegionRuntime::abortsByCause, kMachineAbortByCause) size
 *  themselves from this so a new cause can't silently truncate
 *  stats — machine.cc static_asserts the telemetry side. */
inline constexpr size_t kNumAbortCauses =
    static_cast<size_t>(AbortCause::Io) + 1;

const char *abortCauseName(AbortCause cause);

/** Region lifecycle markers attached to trace uops. */
enum class RegionEvent : uint8_t { None, Begin, End, Abort };

/** One executed uop of the traced context. Field order and widths
 *  keep the struct at 64 bytes, and the alignment pins batch entries
 *  to cache-line boundaries (exactly one line per uop): the machine
 *  copies one per traced uop into its batch ring, and the timing
 *  model reads them back out. */
struct alignas(64) TraceUop
{
    uint64_t seq = 0;           ///< 1-based sequence number
    uint64_t memAddr = 0;       ///< word address for loads/stores

    /** Producer seqs of the register sources (0 = no producer). */
    uint64_t srcSeq[3] = {0, 0, 0};

    /** Global pcs are `method << 16 | offset` (hw/isa.hh) with both
     *  halves under 2^16 — see the method-count check in the Machine
     *  constructor — so 32 bits hold them exactly. */
    uint32_t pc = 0;
    uint32_t targetPc = 0;      ///< branch/indirect actual target

    LatClass lat = LatClass::Int;
    bool isLoad = false;
    bool isStore = false;
    bool isBranch = false;      ///< conditional branch
    bool taken = false;
    bool indirect = false;      ///< indirect call (target prediction)
    bool serializing = false;
    int8_t numSrcs = 0;

    RegionEvent region = RegionEvent::None;
    int16_t regionId = -1;
};
static_assert(sizeof(TraceUop) == 64,
              "TraceUop should stay one cache line");

/** Emitted when the traced context's region aborts. */
struct AbortEvent
{
    AbortCause cause;
    uint64_t discardedUops;     ///< uops since the aregion_begin
    uint64_t resolvePc;         ///< pc of the aborting instruction
};

/** Consumer interface (the timing model; tests use mock sinks). */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void uop(const TraceUop &u) = 0;

    /** Contiguous run of uops in program order. The machine batches
     *  trace delivery through this hook so the per-uop virtual call
     *  disappears from the hot loop; sinks that care only about
     *  individual uops inherit this per-uop fallback. Ordering
     *  contract: a batch is flushed before every abortFlush() and
     *  marker() call, so relative order with those events is
     *  preserved exactly as if uop() had been called n times. */
    virtual void uopBatch(const TraceUop *u, size_t n)
    {
        for (size_t i = 0; i < n; ++i)
            uop(u[i]);
    }

    virtual void abortFlush(const AbortEvent &event) { (void)event; }
    virtual void marker(int64_t id) { (void)id; }
};

} // namespace aregion::hw

#endif // AREGION_HW_TRACE_HH
