/**
 * @file
 * Set-associative cache model with LRU replacement and an optional
 * next-line stream prefetcher, used by the timing model for load
 * latencies (Table 1: 32KB/4-way L1 at 4 cycles, 4MB/8-way L2 at 20
 * cycles, 100 ns memory).
 */

#ifndef AREGION_HW_CACHE_HH
#define AREGION_HW_CACHE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace aregion::hw {

/** One cache level (addresses are line numbers). */
class Cache
{
  public:
    Cache(int num_lines, int assoc);

    /** Touch a line; true on hit. Installs on miss. */
    bool access(uint64_t line);

    /** Install without hit accounting (prefetch). */
    void install(uint64_t line);

    uint64_t hits = 0;
    uint64_t misses = 0;

  private:
    struct Way
    {
        uint64_t line = ~0ull;
        uint64_t lastUse = 0;
    };

    /** Set index of a line; the division is a shift/mask whenever
     *  the geometry is a power of two (every Table 1 config is). */
    size_t
    setOf(uint64_t line) const
    {
        return static_cast<size_t>(
            setsPow2 ? line & setMask
                     : line % static_cast<uint64_t>(numSets));
    }

    int assoc;
    int numSets;
    bool setsPow2;
    uint64_t setMask;
    std::vector<Way> ways;      ///< numSets x assoc
    uint64_t clock = 0;
};

/** L1 + L2 + memory hierarchy for the timing model. */
class CacheHierarchy
{
  public:
    CacheHierarchy(int l1_lines, int l1_assoc, int l2_lines,
                   int l2_assoc, int l1_lat, int l2_lat, int mem_lat,
                   bool prefetch);

    /** Latency (cycles) of a data access at the word address.
     *  line_words must match across calls (it is the config's fixed
     *  line size; pow2 values use a shift instead of a divide). */
    int accessLatency(uint64_t word_addr, int line_words);

    /** Line number of a word address — the same mapping
     *  accessLatency uses, exposed so the timing model's leakage
     *  observer records footprints at the model's own line
     *  granularity. */
    static uint64_t
    lineOf(uint64_t word_addr, int line_words)
    {
        const auto words = static_cast<uint64_t>(line_words);
        return (words & (words - 1)) == 0
                   ? word_addr >> std::countr_zero(words)
                   : word_addr / words;
    }

    uint64_t l1Misses() const { return l1.misses; }
    uint64_t l2Misses() const { return l2.misses; }

  private:
    Cache l1;
    Cache l2;
    int l1Lat;
    int l2Lat;
    int memLat;
    bool prefetch;
    uint64_t lastMissLine = ~0ull;
};

} // namespace aregion::hw

#endif // AREGION_HW_CACHE_HH
