#include "hw/oracle.hh"

#include <sstream>

#include "vm/layout.hh"

namespace aregion::hw {

namespace layout = vm::layout;

RollbackOracle::Snapshot &
RollbackOracle::slot(int ctx_id)
{
    const auto idx = static_cast<size_t>(ctx_id);
    if (idx >= snapshots.size())
        snapshots.resize(idx + 1);
    return snapshots[idx];
}

void
RollbackOracle::captureBegin(int ctx_id, size_t num_ctxs,
                             const std::vector<int64_t> &regs,
                             int alt_pc, const vm::Heap &heap)
{
    Snapshot &snap = slot(ctx_id);
    snap.valid = true;
    snap.altPc = alt_pc;
    snap.regs = regs;
    snap.allocMark = heap.allocMark();
    // Copying the whole live heap per region entry is O(heap) — fine
    // for the oracle's random-program tests, wrong for benchmarks;
    // that is why the oracle is attach-only.
    snap.heapValid = num_ctxs == 1;
    if (snap.heapValid) {
        snap.heapWords.clear();
        snap.heapWords.reserve(snap.allocMark - layout::POISON_WORDS);
        for (uint64_t a = layout::POISON_WORDS; a < snap.allocMark;
             ++a) {
            snap.heapWords.push_back(heap.load(a));
        }
    }
    ++captureCount;
}

void
RollbackOracle::checkAbort(int ctx_id, size_t num_ctxs,
                           const std::vector<int64_t> &regs, int pc,
                           const vm::Heap &heap)
{
    Snapshot &snap = slot(ctx_id);
    if (!snap.valid) {
        found.push_back({ctx_id, "abort without a captured begin"});
        return;
    }
    snap.valid = false;
    ++checkCount;

    auto diverge = [&](const std::string &what) {
        found.push_back({ctx_id, what});
    };

    if (pc != snap.altPc) {
        std::ostringstream os;
        os << "abort resumed at pc " << pc
           << ", expected alternate pc " << snap.altPc;
        diverge(os.str());
    }
    if (regs.size() != snap.regs.size()) {
        std::ostringstream os;
        os << "register file size changed: " << snap.regs.size()
           << " -> " << regs.size();
        diverge(os.str());
    } else {
        for (size_t r = 0; r < regs.size(); ++r) {
            if (regs[r] != snap.regs[r]) {
                std::ostringstream os;
                os << "register r" << r << " not restored: checkpoint "
                   << snap.regs[r] << ", post-abort " << regs[r];
                diverge(os.str());
            }
        }
    }

    // Heap equivalence holds only if no other context existed at
    // either end of the window (one could have committed stores).
    if (!snap.heapValid || num_ctxs != 1)
        return;
    ++heapCheckCount;
    if (heap.allocMark() < snap.allocMark) {
        std::ostringstream os;
        os << "alloc mark moved backwards: " << snap.allocMark
           << " -> " << heap.allocMark();
        diverge(os.str());
        return;
    }
    for (uint64_t a = layout::POISON_WORDS; a < snap.allocMark; ++a) {
        const int64_t now = heap.load(a);
        const int64_t then =
            snap.heapWords[static_cast<size_t>(a -
                                               layout::POISON_WORDS)];
        if (now != then) {
            std::ostringstream os;
            os << "heap word " << a << " leaked a speculative store: "
               << then << " -> " << now;
            diverge(os.str());
        }
    }
}

void
RollbackOracle::onCommit(int ctx_id)
{
    slot(ctx_id).valid = false;
}

} // namespace aregion::hw
