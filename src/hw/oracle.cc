#include "hw/oracle.hh"

#include <sstream>

#include "vm/layout.hh"

namespace aregion::hw {

namespace layout = vm::layout;

RollbackOracle::Snapshot &
RollbackOracle::slot(int ctx_id)
{
    const auto idx = static_cast<size_t>(ctx_id);
    if (idx >= snapshots.size())
        snapshots.resize(idx + 1);
    return snapshots[idx];
}

void
RollbackOracle::report(int ctx_id, std::string what)
{
    if (replayValid) {
        std::ostringstream os;
        os << " [seed=" << replaySeed << " ctx=" << ctx_id
           << "; replay: " << replayCommand << "]";
        what += os.str();
    }
    found.push_back({ctx_id, std::move(what)});
}

void
RollbackOracle::setReplayInfo(uint64_t seed, std::string command)
{
    replayValid = true;
    replaySeed = seed;
    replayCommand = std::move(command);
}

int64_t
RollbackOracle::shadowAt(uint64_t addr) const
{
    if (addr < layout::POISON_WORDS)
        return 0;
    const uint64_t idx = addr - layout::POISON_WORDS;
    return idx < shadow.size() ? shadow[idx] : 0;
}

void
RollbackOracle::shadowStore(uint64_t addr, int64_t value)
{
    if (addr < layout::POISON_WORDS)
        return;
    const uint64_t idx = addr - layout::POISON_WORDS;
    if (idx >= shadow.size())
        shadow.resize(idx + 1, 0);
    shadow[idx] = value;
}

void
RollbackOracle::onRunStart(const vm::Heap &heap)
{
    shadowActive = true;
    // Mirror whatever the heap already holds (vtable/subtype
    // metadata, yield flags; allocMark == heapBase at run start).
    shadow.assign(heap.allocMark() - layout::POISON_WORDS, 0);
    for (uint64_t a = layout::POISON_WORDS; a < heap.allocMark(); ++a)
        shadow[a - layout::POISON_WORDS] = heap.load(a);
}

void
RollbackOracle::onNonSpecStore(uint64_t addr, int64_t value)
{
    if (shadowActive)
        shadowStore(addr, value);
}

void
RollbackOracle::onCommitStore(uint64_t addr, int64_t value)
{
    if (shadowActive)
        shadowStore(addr, value);
}

void
RollbackOracle::onSpecRead(int ctx_id, uint64_t addr, int64_t value)
{
    if (!shadowActive)
        return;
    Snapshot &snap = slot(ctx_id);
    if (!snap.valid || snap.readLogOverflow)
        return;
    if (snap.readLog.size() >= kReadLogCap) {
        snap.readLogOverflow = true;
        return;
    }
    snap.readLog.emplace_back(addr, value);
    ++specReadCount;
}

void
RollbackOracle::captureBegin(int ctx_id, size_t num_ctxs,
                             const std::vector<int64_t> &regs,
                             int alt_pc, const vm::Heap &heap)
{
    Snapshot &snap = slot(ctx_id);
    snap.valid = true;
    snap.altPc = alt_pc;
    snap.regs = regs;
    snap.allocMark = heap.allocMark();
    snap.readLog.clear();
    snap.readLogOverflow = false;
    // Copying the whole live heap per region entry is O(heap) — fine
    // for the oracle's random-program tests, wrong for benchmarks;
    // that is why the oracle is attach-only.
    snap.heapValid = num_ctxs == 1;
    if (snap.heapValid) {
        snap.heapWords.clear();
        snap.heapWords.reserve(snap.allocMark - layout::POISON_WORDS);
        for (uint64_t a = layout::POISON_WORDS; a < snap.allocMark;
             ++a) {
            snap.heapWords.push_back(heap.load(a));
        }
    }
    ++captureCount;
}

void
RollbackOracle::checkCommit(int ctx_id, size_t num_ctxs,
                            const vm::Heap &heap)
{
    (void)num_ctxs;
    (void)heap;
    if (!shadowActive)
        return;
    Snapshot &snap = slot(ctx_id);
    if (!snap.valid || snap.readLogOverflow)
        return;
    ++commitCheckCount;
    // Serializability: every value this region read from the heap
    // must still be the committed value now that the region itself
    // commits. Eager conflict detection guarantees it — a conflicting
    // commit in the window would have pend-aborted us first.
    for (const auto &[addr, value] : snap.readLog) {
        const int64_t committed = shadowAt(addr);
        if (committed != value) {
            std::ostringstream os;
            os << "serializability violation: committing region read "
               << value << " from word " << addr
               << " but the committed value at commit time is "
               << committed;
            report(ctx_id, os.str());
        }
    }
}

void
RollbackOracle::checkAbort(int ctx_id, size_t num_ctxs,
                           const std::vector<int64_t> &regs, int pc,
                           const vm::Heap &heap, AbortCause cause)
{
    Snapshot &snap = slot(ctx_id);
    if (!snap.valid) {
        report(ctx_id, "abort without a captured begin");
        return;
    }
    snap.valid = false;
    ++checkCount;

    auto diverge = [&](const std::string &what) {
        report(ctx_id, what);
    };

    if (pc != snap.altPc) {
        std::ostringstream os;
        os << "abort resumed at pc " << pc
           << ", expected alternate pc " << snap.altPc;
        diverge(os.str());
    }
    if (regs.size() != snap.regs.size()) {
        std::ostringstream os;
        os << "register file size changed: " << snap.regs.size()
           << " -> " << regs.size();
        diverge(os.str());
    } else {
        for (size_t r = 0; r < regs.size(); ++r) {
            if (regs[r] != snap.regs[r]) {
                std::ostringstream os;
                os << "register r" << r << " not restored: checkpoint "
                   << snap.regs[r] << ", post-abort " << regs[r];
                diverge(os.str());
            }
        }
    }

    // Cross-context global consistency: buffered speculative stores
    // never reach the heap, so after a conflict abort the heap must
    // equal the shadow word-for-word (words allocated speculatively
    // and abandoned read as zero on both sides).
    if (shadowActive && cause == AbortCause::Conflict) {
        ++conflictHeapCheckCount;
        int reported = 0;
        uint64_t mismatches = 0;
        for (uint64_t a = layout::POISON_WORDS; a < heap.allocMark();
             ++a) {
            const int64_t now = heap.load(a);
            const int64_t want = shadowAt(a);
            if (now == want)
                continue;
            ++mismatches;
            if (reported < 8) {
                ++reported;
                std::ostringstream os;
                os << "conflict abort left heap word " << a
                   << " inconsistent with committed state: shadow "
                   << want << ", heap " << now;
                diverge(os.str());
            }
        }
        if (mismatches > 8) {
            std::ostringstream os;
            os << "conflict abort heap check: " << (mismatches - 8)
               << " further mismatching words suppressed";
            diverge(os.str());
        }
    }

    // Heap equivalence holds only if no other context existed at
    // either end of the window (one could have committed stores).
    if (!snap.heapValid || num_ctxs != 1)
        return;
    ++heapCheckCount;
    if (heap.allocMark() < snap.allocMark) {
        std::ostringstream os;
        os << "alloc mark moved backwards: " << snap.allocMark
           << " -> " << heap.allocMark();
        diverge(os.str());
        return;
    }
    for (uint64_t a = layout::POISON_WORDS; a < snap.allocMark; ++a) {
        const int64_t now = heap.load(a);
        const int64_t then =
            snap.heapWords[static_cast<size_t>(a -
                                               layout::POISON_WORDS)];
        if (now != then) {
            std::ostringstream os;
            os << "heap word " << a << " leaked a speculative store: "
               << then << " -> " << now;
            diverge(os.str());
        }
    }
}

void
RollbackOracle::onCommit(int ctx_id)
{
    Snapshot &snap = slot(ctx_id);
    snap.valid = false;
    snap.readLog.clear();
    snap.readLogOverflow = false;
}

} // namespace aregion::hw
