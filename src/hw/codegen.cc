#include "hw/codegen.hh"

#include "support/logging.hh"
#include "vm/layout.hh"
#include "vm/trap.hh"

namespace aregion::hw {

namespace layout = vm::layout;
using ir::Op;

LayoutInfo
LayoutInfo::fromHeap(const vm::Heap &heap)
{
    LayoutInfo info;
    info.vtableBase = heap.vtableAddr(0, 0);
    info.subtypeBase = heap.subtypeBase();
    info.subtypeColumns = heap.subtypeColumns();
    return info;
}

namespace {

/** Deferred out-of-line code appended after the main body. */
struct Stub
{
    enum Kind { TrapStub, AbortStub, LockSlowStub, UnlockSlowStub,
                YieldStub } kind;
    int aux = 0;            ///< trap kind or abort id
    MReg obj = NO_MREG;     ///< monitor object for lock stubs
    int resume = -1;        ///< uop offset to jump back to
    int bcMethod = -1;
    int bcPc = -1;
    /** Branch sites waiting for this stub's offset. */
    std::vector<size_t> patchSites;
};

class Lowerer
{
  public:
    Lowerer(const ir::Function &func_, const LayoutInfo &layout_)
        : f(func_), lay(layout_)
    {
        out.methodId = f.methodId;
        out.name = f.name;
        out.numArgs = f.numArgs;
        nextReg = f.numVregs();
        blockStart.assign(static_cast<size_t>(f.numBlocks()), -1);
    }

    MachineFunction run();

  private:
    MReg temp() { return nextReg++; }

    size_t
    emit(MUop uop)
    {
        uop.bcMethod = curBcMethod;
        uop.bcPc = curBcPc;
        out.code.push_back(std::move(uop));
        return out.code.size() - 1;
    }

    MUop
    mk(MKind kind, MReg dst = NO_MREG, SrcList srcs = {},
       int64_t imm = 0, int aux = 0)
    {
        MUop uop;
        uop.kind = kind;
        uop.dst = dst;
        uop.srcs = std::move(srcs);
        uop.imm = imm;
        uop.aux = aux;
        return uop;
    }

    MUop
    alu(AluOp op, MReg dst, MReg a, MReg b)
    {
        MUop uop = mk(MKind::Alu, dst, {a, b});
        uop.alu = op;
        return uop;
    }

    /** Emit a branch whose target is a block (fixed up later). */
    void
    branchToBlock(MReg cond, bool if_zero, int block)
    {
        MUop uop = mk(MKind::Br, NO_MREG, {cond});
        uop.brIfZero = if_zero;
        blockFixups.emplace_back(emit(uop), block);
    }

    void
    jumpToBlock(int block)
    {
        blockFixups.emplace_back(emit(mk(MKind::Jmp)), block);
    }

    /** Branch to an out-of-line stub. */
    void
    branchToStub(MReg cond, bool if_zero, Stub stub)
    {
        MUop uop = mk(MKind::Br, NO_MREG, {cond});
        uop.brIfZero = if_zero;
        const size_t site = emit(uop);
        stub.bcMethod = curBcMethod;
        stub.bcPc = curBcPc;
        stub.patchSites.push_back(site);
        stubs.push_back(std::move(stub));
    }

    void lowerInstr(const ir::Instr &in, const ir::Block &blk,
                    int next_block);
    void appendStubs();

    const ir::Function &f;
    const LayoutInfo &lay;
    MachineFunction out;
    std::vector<int> blockStart;
    std::vector<std::pair<size_t, int>> blockFixups;
    std::vector<Stub> stubs;
    int nextReg;
    int curBcMethod = -1;
    int curBcPc = -1;
};

MachineFunction
Lowerer::run()
{
    const auto order = f.reversePostOrder();
    for (size_t i = 0; i < order.size(); ++i) {
        const int b = order[i];
        const ir::Block &blk = f.block(b);
        blockStart[static_cast<size_t>(b)] =
            static_cast<int>(out.code.size());
        const int next_block =
            i + 1 < order.size() ? order[i + 1] : -1;
        for (const ir::Instr &in : blk.instrs) {
            curBcMethod = in.bcMethod;
            curBcPc = in.bcPc;
            lowerInstr(in, blk, next_block);
        }
    }
    appendStubs();

    for (const auto &[site, block] : blockFixups) {
        const int target = blockStart[static_cast<size_t>(block)];
        AREGION_ASSERT(target >= 0, "branch to unlowered block ",
                       block, " in ", f.name);
        out.code[site].target = target;
    }

    for (const ir::RegionInfo &region : f.regions)
        out.regionAborts[region.id] = region.abortOrigins;

    out.numRegs = nextReg;
    AREGION_ASSERT(out.code.size() < 0xffff,
                   "method ", f.name, " exceeds the 64k-uop pc space");
    return std::move(out);
}

void
Lowerer::lowerInstr(const ir::Instr &in, const ir::Block &blk,
                    int next_block)
{
    switch (in.op) {
      case Op::Const:
        emit(mk(MKind::Imm, in.dst, {}, in.imm));
        break;
      case Op::Mov:
        emit(mk(MKind::Mov, in.dst, {in.s0()}));
        break;

      case Op::Add: emit(alu(AluOp::Add, in.dst, in.s0(), in.s1())); break;
      case Op::Sub: emit(alu(AluOp::Sub, in.dst, in.s0(), in.s1())); break;
      case Op::Mul: emit(alu(AluOp::Mul, in.dst, in.s0(), in.s1())); break;
      case Op::Div: emit(alu(AluOp::Div, in.dst, in.s0(), in.s1())); break;
      case Op::Rem: emit(alu(AluOp::Rem, in.dst, in.s0(), in.s1())); break;
      case Op::And: emit(alu(AluOp::And, in.dst, in.s0(), in.s1())); break;
      case Op::Or: emit(alu(AluOp::Or, in.dst, in.s0(), in.s1())); break;
      case Op::Xor: emit(alu(AluOp::Xor, in.dst, in.s0(), in.s1())); break;
      case Op::Shl: emit(alu(AluOp::Shl, in.dst, in.s0(), in.s1())); break;
      case Op::Shr: emit(alu(AluOp::Shr, in.dst, in.s0(), in.s1())); break;
      case Op::CmpEq:
        emit(alu(AluOp::CmpEq, in.dst, in.s0(), in.s1()));
        break;
      case Op::CmpNe:
        emit(alu(AluOp::CmpNe, in.dst, in.s0(), in.s1()));
        break;
      case Op::CmpLt:
        emit(alu(AluOp::CmpLt, in.dst, in.s0(), in.s1()));
        break;
      case Op::CmpLe:
        emit(alu(AluOp::CmpLe, in.dst, in.s0(), in.s1()));
        break;
      case Op::CmpGt:
        emit(alu(AluOp::CmpGt, in.dst, in.s0(), in.s1()));
        break;
      case Op::CmpGe:
        emit(alu(AluOp::CmpGe, in.dst, in.s0(), in.s1()));
        break;

      case Op::LoadField:
        emit(mk(MKind::Load, in.dst, {in.s0()},
                layout::OBJ_FIELD_BASE + in.aux));
        break;
      case Op::StoreField:
        emit(mk(MKind::Store, NO_MREG, {in.s0(), in.s1()},
                layout::OBJ_FIELD_BASE + in.aux));
        break;
      case Op::LoadElem:
        emit(mk(MKind::Load, in.dst, {in.s0(), in.s1()},
                layout::ARR_ELEM_BASE));
        break;
      case Op::StoreElem:
        emit(mk(MKind::Store, NO_MREG, {in.s0(), in.s1(), in.s2()},
                layout::ARR_ELEM_BASE));
        break;
      case Op::LoadRaw:
        emit(mk(MKind::Load, in.dst, {in.s0()}, in.imm));
        break;
      case Op::StoreRaw:
        emit(mk(MKind::Store, NO_MREG, {in.s0(), in.s1()}, in.imm));
        break;

      case Op::LoadSubtype: {
        // dst = subtype[(cls + 2) * columns + targetClass].
        const MReg two = temp();
        emit(mk(MKind::Imm, two, {}, 2));
        const MReg row = temp();
        emit(alu(AluOp::Add, row, in.s0(), two));
        const MReg cols = temp();
        emit(mk(MKind::Imm, cols, {}, lay.subtypeColumns));
        const MReg offset = temp();
        emit(alu(AluOp::Mul, offset, row, cols));
        emit(mk(MKind::Load, in.dst, {offset},
                static_cast<int64_t>(lay.subtypeBase) + in.aux));
        break;
      }

      case Op::NullCheck:
        branchToStub(in.s0(), /*if_zero=*/true,
                     {Stub::TrapStub,
                      static_cast<int>(vm::TrapKind::NullPointer),
                      NO_MREG, -1, -1, -1, {}});
        break;
      case Op::BoundsCheck: {
        const MReg ok = temp();
        emit(alu(AluOp::CmpULt, ok, in.s0(), in.s1()));
        branchToStub(ok, /*if_zero=*/true,
                     {Stub::TrapStub,
                      static_cast<int>(vm::TrapKind::ArrayBounds),
                      NO_MREG, -1, -1, -1, {}});
        break;
      }
      case Op::DivCheck:
        branchToStub(in.s0(), /*if_zero=*/true,
                     {Stub::TrapStub,
                      static_cast<int>(vm::TrapKind::DivideByZero),
                      NO_MREG, -1, -1, -1, {}});
        break;
      case Op::SizeCheck: {
        const MReg zero = temp();
        emit(mk(MKind::Imm, zero, {}, 0));
        const MReg neg = temp();
        emit(alu(AluOp::CmpLt, neg, in.s0(), zero));
        branchToStub(neg, /*if_zero=*/false,
                     {Stub::TrapStub,
                      static_cast<int>(
                          vm::TrapKind::NegativeArraySize),
                      NO_MREG, -1, -1, -1, {}});
        break;
      }
      case Op::TypeCheck:
        branchToStub(in.s0(), /*if_zero=*/true,
                     {Stub::TrapStub,
                      static_cast<int>(vm::TrapKind::ClassCast),
                      NO_MREG, -1, -1, -1, {}});
        break;

      case Op::NewObject:
        emit(mk(MKind::Alloc, in.dst, {}, 0, in.aux));
        break;
      case Op::NewArray:
        emit(mk(MKind::Alloc, in.dst, {in.s0()}, 1));
        break;

      case Op::CallStatic: {
        MUop call = mk(MKind::CallDirect, in.dst, in.srcs, 0, in.aux);
        emit(std::move(call));
        break;
      }
      case Op::CallVirtual: {
        const MReg cls = temp();
        emit(mk(MKind::Load, cls, {in.s0()}, layout::HDR_CLASS));
        const MReg slots = temp();
        emit(mk(MKind::Imm, slots, {}, lay.vtableSlots));
        const MReg row = temp();
        emit(alu(AluOp::Mul, row, cls, slots));
        const MReg callee = temp();
        emit(mk(MKind::Load, callee, {row},
                static_cast<int64_t>(lay.vtableBase) + in.aux));
        SrcList srcs{callee};
        for (MReg r : in.srcs)
            srcs.push_back(r);
        emit(mk(MKind::CallIndirect, in.dst, std::move(srcs)));
        break;
      }

      case Op::MonitorEnter: {
        // Fast path: lock free -> CAS in our lock word.
        const MReg word = temp();
        emit(mk(MKind::Load, word, {in.s0()}, layout::HDR_LOCK));
        Stub slow{Stub::LockSlowStub, 0, in.s0(), -1, -1, -1, {}};
        {
            MUop br = mk(MKind::Br, NO_MREG, {word});
            br.brIfZero = false;        // held (even by us) -> slow
            slow.patchSites.push_back(emit(br));
        }
        const MReg mine = temp();
        emit(mk(MKind::TidWord, mine));
        const MReg old = temp();
        emit(mk(MKind::Cas, old, {in.s0(), mine},
                layout::HDR_LOCK));
        {
            MUop br = mk(MKind::Br, NO_MREG, {old});
            br.brIfZero = false;        // raced -> slow
            slow.patchSites.push_back(emit(br));
        }
        slow.resume = static_cast<int>(out.code.size());
        slow.bcMethod = curBcMethod;
        slow.bcPc = curBcPc;
        stubs.push_back(std::move(slow));
        break;
      }
      case Op::MonitorExit: {
        const MReg word = temp();
        emit(mk(MKind::Load, word, {in.s0()}, layout::HDR_LOCK));
        const MReg mine = temp();
        emit(mk(MKind::TidWord, mine));
        const MReg same = temp();
        emit(alu(AluOp::CmpEq, same, word, mine));
        Stub slow{Stub::UnlockSlowStub, 0, in.s0(), -1, -1, -1, {}};
        {
            MUop br = mk(MKind::Br, NO_MREG, {same});
            br.brIfZero = true;         // nested/foreign -> slow
            slow.patchSites.push_back(emit(br));
        }
        const MReg zero = temp();
        emit(mk(MKind::Imm, zero, {}, 0));
        emit(mk(MKind::Store, NO_MREG, {in.s0(), zero},
                layout::HDR_LOCK));
        slow.resume = static_cast<int>(out.code.size());
        slow.bcMethod = curBcMethod;
        slow.bcPc = curBcPc;
        stubs.push_back(std::move(slow));
        break;
      }

      case Op::Safepoint: {
        const MReg flag = temp();
        emit(mk(MKind::YieldLoad, flag));
        Stub stub{Stub::YieldStub, 0, NO_MREG, -1, -1, -1, {}};
        MUop br = mk(MKind::Br, NO_MREG, {flag});
        br.brIfZero = false;
        stub.patchSites.push_back(emit(br));
        stub.resume = static_cast<int>(out.code.size());
        stub.bcMethod = curBcMethod;
        stub.bcPc = curBcPc;
        stubs.push_back(std::move(stub));
        break;
      }

      case Op::Print:
        emit(mk(MKind::Print, NO_MREG, {in.s0()}));
        break;
      case Op::Marker:
        emit(mk(MKind::Marker, NO_MREG, {}, in.imm));
        break;
      case Op::Spawn:
        emit(mk(MKind::Spawn, NO_MREG, in.srcs, 0, in.aux));
        break;

      case Op::AtomicBegin: {
        // Alternate pc = the region's exception edge (succs[1]).
        AREGION_ASSERT(blk.succs.size() == 2,
                       "region entry lacks exception edge");
        MUop begin = mk(MKind::ABegin, NO_MREG, {}, 0, in.aux);
        blockFixups.emplace_back(emit(begin), blk.succs[1]);
        break;
      }
      case Op::AtomicEnd:
        emit(mk(MKind::AEnd, NO_MREG, {}, 0, in.aux));
        break;
      case Op::Assert:
        branchToStub(in.s0(), /*if_zero=*/in.imm != 0,
                     {Stub::AbortStub, in.aux, NO_MREG, -1, -1, -1,
                      {}});
        break;

      case Op::Branch:
        branchToBlock(in.s0(), /*if_zero=*/false, blk.succs[0]);
        if (blk.succs[1] != next_block)
            jumpToBlock(blk.succs[1]);
        break;
      case Op::Jump:
        if (blk.succs[0] != next_block)
            jumpToBlock(blk.succs[0]);
        break;
      case Op::Ret:
        emit(mk(MKind::Ret, NO_MREG, in.srcs));
        break;
    }
}

void
Lowerer::appendStubs()
{
    for (Stub &stub : stubs) {
        const int offset = static_cast<int>(out.code.size());
        curBcMethod = stub.bcMethod;
        curBcPc = stub.bcPc;
        switch (stub.kind) {
          case Stub::TrapStub:
            emit(mk(MKind::Trap, NO_MREG, {}, 0, stub.aux));
            break;
          case Stub::AbortStub:
            emit(mk(MKind::AAbort, NO_MREG, {}, 0, stub.aux));
            break;
          case Stub::LockSlowStub: {
            emit(mk(MKind::LockSlow, NO_MREG, {stub.obj}));
            MUop jmp = mk(MKind::Jmp);
            jmp.target = stub.resume;
            emit(std::move(jmp));
            break;
          }
          case Stub::UnlockSlowStub: {
            emit(mk(MKind::UnlockSlow, NO_MREG, {stub.obj}));
            MUop jmp = mk(MKind::Jmp);
            jmp.target = stub.resume;
            emit(std::move(jmp));
            break;
          }
          case Stub::YieldStub: {
            // The yield flag is never set in this system; the stub
            // simply resumes (its cost is the poll, not the stub).
            MUop jmp = mk(MKind::Jmp);
            jmp.target = stub.resume;
            emit(std::move(jmp));
            break;
          }
        }
        for (size_t site : stub.patchSites)
            out.code[site].target = offset;
    }
}

} // namespace

MachineFunction
lower(const ir::Function &func, const LayoutInfo &layout)
{
    Lowerer lowerer(func, layout);
    return lowerer.run();
}

MachineProgram
lowerModule(const ir::Module &mod, const LayoutInfo &layout)
{
    MachineProgram mp;
    mp.prog = mod.prog;
    for (const auto &[m, f] : mod.funcs)
        mp.funcs.emplace(m, lower(f, layout));
    return mp;
}

} // namespace aregion::hw
