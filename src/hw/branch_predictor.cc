#include "hw/branch_predictor.hh"

namespace aregion::hw {

BranchPredictor::BranchPredictor(size_t gshare_entries,
                                 size_t bimodal_entries,
                                 size_t target_entries)
    : gshare(gshare_entries), bimodal(bimodal_entries),
      chooser(bimodal_entries), gshareMask(gshare_entries - 1),
      targets(target_entries, 0)
{
}

size_t
BranchPredictor::gshareIndex(uint64_t pc) const
{
    return static_cast<size_t>((pc) ^ history);
}

bool
BranchPredictor::predictTaken(uint64_t pc) const
{
    const bool use_gshare =
        chooser.taken(static_cast<size_t>(pc));
    return use_gshare ? gshare.taken(gshareIndex(pc))
                      : bimodal.taken(static_cast<size_t>(pc));
}

void
BranchPredictor::update(uint64_t pc, bool taken)
{
    const bool g = gshare.taken(gshareIndex(pc));
    const bool b = bimodal.taken(static_cast<size_t>(pc));
    if (g != b)
        chooser.update(static_cast<size_t>(pc), g == taken);
    gshare.update(gshareIndex(pc), taken);
    bimodal.update(static_cast<size_t>(pc), taken);
    history = (history << 1 | (taken ? 1 : 0)) & 0xffff;
}

uint64_t
BranchPredictor::predictTarget(uint64_t pc) const
{
    return targets[static_cast<size_t>(pc) &
                   (targets.size() - 1)];
}

void
BranchPredictor::updateTarget(uint64_t pc, uint64_t target)
{
    targets[static_cast<size_t>(pc) & (targets.size() - 1)] =
        target;
}

} // namespace aregion::hw
