#include "hw/isa.hh"

#include <sstream>

#include "support/logging.hh"

namespace aregion::hw {

const char *
mkindName(MKind kind)
{
    switch (kind) {
      case MKind::Imm: return "imm";
      case MKind::Mov: return "mov";
      case MKind::Alu: return "alu";
      case MKind::Load: return "load";
      case MKind::Store: return "store";
      case MKind::Br: return "br";
      case MKind::Jmp: return "jmp";
      case MKind::CallDirect: return "call";
      case MKind::CallIndirect: return "callind";
      case MKind::Ret: return "ret";
      case MKind::Cas: return "cas";
      case MKind::TidWord: return "tidword";
      case MKind::LockSlow: return "lockslow";
      case MKind::UnlockSlow: return "unlockslow";
      case MKind::Alloc: return "alloc";
      case MKind::YieldLoad: return "yieldload";
      case MKind::Print: return "print";
      case MKind::Marker: return "marker";
      case MKind::Spawn: return "spawn";
      case MKind::Trap: return "trap";
      case MKind::ABegin: return "aregion_begin";
      case MKind::AEnd: return "aregion_end";
      case MKind::AAbort: return "aregion_abort";
      case MKind::Nop: return "nop";
    }
    return "<bad>";
}

std::string
MUop::toString() const
{
    std::ostringstream os;
    if (dst != NO_MREG)
        os << "r" << dst << " = ";
    os << mkindName(kind);
    for (MReg s : srcs)
        os << " r" << s;
    if (imm)
        os << " #" << imm;
    if (target >= 0)
        os << " ->" << target;
    if (kind == MKind::Br)
        os << (brIfZero ? " ifz" : " ifnz");
    return os.str();
}

const MachineFunction &
MachineProgram::func(vm::MethodId m) const
{
    auto it = funcs.find(m);
    AREGION_ASSERT(it != funcs.end(), "no machine code for method ", m);
    return it->second;
}

int
MachineProgram::totalUops() const
{
    int total = 0;
    for (const auto &[m, f] : funcs)
        total += static_cast<int>(f.code.size());
    return total;
}

} // namespace aregion::hw
