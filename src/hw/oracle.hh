/**
 * @file
 * Rollback consistency oracle.
 *
 * Hardware atomicity's core contract (paper Sections 3.1–3.2) is that
 * an abort restores *exact* architectural state: registers revert to
 * the aregion_begin checkpoint, no speculative store reaches memory,
 * and control lands on the region's alternate pc. The machine
 * simulator implements that with snapshots and a store buffer — and
 * this oracle checks it with an independent mechanism, so a bug in
 * the machine's rollback path cannot also hide the evidence.
 *
 * When attached (Machine::setOracle; tests only — nullptr and fully
 * inert in production), the oracle takes its own copy of the
 * architectural state at every aregion_begin:
 *
 *   - the executing frame's register file,
 *   - the region's alternate pc,
 *   - the heap prefix [layout::POISON_WORDS, allocMark) — which
 *     includes object fields, array elements, and monitor lock words.
 *
 * After every abort it re-reads the machine state and records a
 * Divergence for any mismatch: register files differ, the resumed pc
 * is not the alternate pc, or any pre-existing heap word changed.
 * Words allocated *inside* the region are not compared (the machine
 * leaks the bump-pointer advance on abort by design; the words
 * themselves were only ever written speculatively).
 *
 * The per-snapshot heap comparison is only sound when a single
 * hardware context exists for the whole begin..abort window — another
 * context may legitimately commit between the two points. The oracle
 * skips that check (but still checks registers and pc) in that case.
 *
 * Cross-context mode: when the machine calls onRunStart, the oracle
 * additionally maintains a *shadow heap* mirroring every committed
 * store (non-speculative stores and commit drains — the only two
 * paths by which the machine writes the heap). Two multi-context
 * invariants fall out:
 *
 *   - Global consistency: speculative stores live in store buffers
 *     until commit, so the real heap must equal the shadow at every
 *     instruction boundary. The oracle checks the full heap against
 *     the shadow after every conflict abort; a mismatch means a
 *     speculative store leaked or a committed one was lost.
 *
 *   - Commit-order serializability (the multi-context reading of
 *     Flückiger et al.'s "abort ≡ non-speculative replay"): each
 *     region logs the values its speculative reads observed from the
 *     heap (store-buffer hits excluded), and at commit every logged
 *     value must still match the shadow. Then the region reads
 *     exactly the committed state at its commit point, so commit
 *     order itself is a witness serial order. With eager
 *     ownership-style conflict detection this must never fire — any
 *     conflicting commit pends an abort on the reader first.
 */

#ifndef AREGION_HW_ORACLE_HH
#define AREGION_HW_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hw/trace.hh"
#include "vm/heap.hh"

namespace aregion::hw {

/** One observed violation of the rollback contract. */
struct Divergence
{
    int ctxId;
    std::string what;
};

class RollbackOracle
{
  public:
    /**
     * Enable cross-context (shadow heap) checking; the machine calls
     * this at the top of run(), after metadata is laid out but
     * before the first instruction.
     */
    void onRunStart(const vm::Heap &heap);

    /** Snapshot state at aregion_begin of context `ctx_id`. */
    void captureBegin(int ctx_id, size_t num_ctxs,
                      const std::vector<int64_t> &regs, int alt_pc,
                      const vm::Heap &heap);

    /**
     * Cross-check state after the abort handler ran. On a Conflict
     * abort in cross-context mode, the whole heap is additionally
     * compared against the shadow.
     */
    void checkAbort(int ctx_id, size_t num_ctxs,
                    const std::vector<int64_t> &regs, int pc,
                    const vm::Heap &heap,
                    AbortCause cause = AbortCause::Explicit);

    /** A committed (non-speculative) store reached the heap. */
    void onNonSpecStore(uint64_t addr, int64_t value);

    /** A speculative read of `ctx_id` fell through its store buffer
     *  to the heap and observed `value`. */
    void onSpecRead(int ctx_id, uint64_t addr, int64_t value);

    /**
     * Region of `ctx_id` is about to commit (store buffer not yet
     * drained): validate its read log against the shadow heap —
     * the serializability check.
     */
    void checkCommit(int ctx_id, size_t num_ctxs,
                     const vm::Heap &heap);

    /** One store of the commit drain reached the heap. */
    void onCommitStore(uint64_t addr, int64_t value);

    /** The region committed; drop the pending snapshot. */
    void onCommit(int ctx_id);

    /**
     * Stamp every subsequent divergence message with the failure's
     * reproduction coordinates: the harness seed and a one-line
     * command that replays the failing cell.
     */
    void setReplayInfo(uint64_t seed, std::string command);

    const std::vector<Divergence> &divergences() const
    {
        return found;
    }
    uint64_t captures() const { return captureCount; }
    uint64_t checks() const { return checkCount; }
    uint64_t heapChecks() const { return heapCheckCount; }
    uint64_t specReads() const { return specReadCount; }
    uint64_t commitChecks() const { return commitCheckCount; }
    uint64_t conflictHeapChecks() const
    {
        return conflictHeapCheckCount;
    }

  private:
    struct Snapshot
    {
        bool valid = false;
        bool heapValid = false;     ///< single-context capture
        int altPc = 0;
        std::vector<int64_t> regs;
        uint64_t allocMark = 0;
        std::vector<int64_t> heapWords;     ///< [POISON, allocMark)
        /** Speculative reads served from the heap (addr, value);
         *  validated against the shadow at commit. */
        std::vector<std::pair<uint64_t, int64_t>> readLog;
        bool readLogOverflow = false;
    };

    Snapshot &slot(int ctx_id);
    void report(int ctx_id, std::string what);
    int64_t shadowAt(uint64_t addr) const;
    void shadowStore(uint64_t addr, int64_t value);

    /** Regions are L1-bounded, so a read log this deep means the
     *  hook wiring broke; give up on the region rather than OOM. */
    static constexpr size_t kReadLogCap = 1u << 16;

    std::vector<Snapshot> snapshots;    ///< indexed by context id
    std::vector<Divergence> found;
    bool shadowActive = false;
    std::vector<int64_t> shadow;        ///< [POISON_WORDS, ...)
    bool replayValid = false;
    uint64_t replaySeed = 0;
    std::string replayCommand;
    uint64_t captureCount = 0;
    uint64_t checkCount = 0;
    uint64_t heapCheckCount = 0;
    uint64_t specReadCount = 0;
    uint64_t commitCheckCount = 0;
    uint64_t conflictHeapCheckCount = 0;
};

} // namespace aregion::hw

#endif // AREGION_HW_ORACLE_HH
