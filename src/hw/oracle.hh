/**
 * @file
 * Rollback consistency oracle.
 *
 * Hardware atomicity's core contract (paper Sections 3.1–3.2) is that
 * an abort restores *exact* architectural state: registers revert to
 * the aregion_begin checkpoint, no speculative store reaches memory,
 * and control lands on the region's alternate pc. The machine
 * simulator implements that with snapshots and a store buffer — and
 * this oracle checks it with an independent mechanism, so a bug in
 * the machine's rollback path cannot also hide the evidence.
 *
 * When attached (Machine::setOracle; tests only — nullptr and fully
 * inert in production), the oracle takes its own copy of the
 * architectural state at every aregion_begin:
 *
 *   - the executing frame's register file,
 *   - the region's alternate pc,
 *   - the heap prefix [layout::POISON_WORDS, allocMark) — which
 *     includes object fields, array elements, and monitor lock words.
 *
 * After every abort it re-reads the machine state and records a
 * Divergence for any mismatch: register files differ, the resumed pc
 * is not the alternate pc, or any pre-existing heap word changed.
 * Words allocated *inside* the region are not compared (the machine
 * leaks the bump-pointer advance on abort by design; the words
 * themselves were only ever written speculatively).
 *
 * The heap comparison is only sound when a single hardware context
 * exists for the whole begin..abort window — another context may
 * legitimately commit between the two points. The oracle skips the
 * heap check (but still checks registers and pc) in that case.
 */

#ifndef AREGION_HW_ORACLE_HH
#define AREGION_HW_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "vm/heap.hh"

namespace aregion::hw {

/** One observed violation of the rollback contract. */
struct Divergence
{
    int ctxId;
    std::string what;
};

class RollbackOracle
{
  public:
    /** Snapshot state at aregion_begin of context `ctx_id`. */
    void captureBegin(int ctx_id, size_t num_ctxs,
                      const std::vector<int64_t> &regs, int alt_pc,
                      const vm::Heap &heap);

    /** Cross-check state after the abort handler ran. */
    void checkAbort(int ctx_id, size_t num_ctxs,
                    const std::vector<int64_t> &regs, int pc,
                    const vm::Heap &heap);

    /** The region committed; drop the pending snapshot. */
    void onCommit(int ctx_id);

    const std::vector<Divergence> &divergences() const
    {
        return found;
    }
    uint64_t captures() const { return captureCount; }
    uint64_t checks() const { return checkCount; }
    uint64_t heapChecks() const { return heapCheckCount; }

  private:
    struct Snapshot
    {
        bool valid = false;
        bool heapValid = false;     ///< single-context capture
        int altPc = 0;
        std::vector<int64_t> regs;
        uint64_t allocMark = 0;
        std::vector<int64_t> heapWords;     ///< [POISON, allocMark)
    };

    Snapshot &slot(int ctx_id);

    std::vector<Snapshot> snapshots;    ///< indexed by context id
    std::vector<Divergence> found;
    uint64_t captureCount = 0;
    uint64_t checkCount = 0;
    uint64_t heapCheckCount = 0;
};

} // namespace aregion::hw

#endif // AREGION_HW_ORACLE_HH
