#include "testing/diff_harness.hh"

#include <sstream>

#include "core/compiler.hh"
#include "core/lock_elision.hh"
#include "core/postdom_check_elim.hh"
#include "core/region_formation.hh"
#include "hw/bisim.hh"
#include "hw/codegen.hh"
#include "hw/machine.hh"
#include "hw/oracle.hh"
#include "hw/timing.hh"
#include "ir/evaluator.hh"
#include "ir/translate.hh"
#include "ir/verifier.hh"
#include "opt/pass.hh"
#include "vm/interpreter.hh"
#include "vm/layout.hh"

namespace aregion::testing {

namespace {

/** Everything one executor run exposes for comparison. */
struct Outcome
{
    bool completed = false;
    std::optional<vm::Trap> trap;
    std::vector<int64_t> output;
    uint64_t digest = 0;
    bool digestValid = false;
};

std::string
trapString(const std::optional<vm::Trap> &trap)
{
    if (!trap)
        return "none";
    std::ostringstream os;
    os << vm::trapName(trap->kind) << " m" << trap->method << ":pc"
       << trap->pc;
    return os.str();
}

std::string
outputString(const std::vector<int64_t> &out)
{
    std::ostringstream os;
    os << "[" << out.size() << "]";
    const size_t show = out.size() < 8 ? out.size() : 8;
    for (size_t i = 0; i < show; ++i)
        os << " " << out[i];
    if (show < out.size())
        os << " ...";
    return os.str();
}

/** Compare one executor's outcome against the reference run.
 *  Digest mismatch is only reported when both sides have a valid
 *  (comparison-scoped) digest. */
void
compareOutcome(DiffReport &report, const std::string &stage,
               const Outcome &ref, const Outcome &got,
               bool compare_digest)
{
    auto add = [&](const std::string &detail) {
        report.divergences.push_back({stage, detail});
    };

    if (ref.completed != got.completed)
        add("completed: ref=" + std::to_string(ref.completed) +
            " got=" + std::to_string(got.completed));

    const bool ref_has = ref.trap.has_value();
    const bool got_has = got.trap.has_value();
    if (ref_has != got_has ||
        (ref_has &&
         (ref.trap->kind != got.trap->kind ||
          ref.trap->method != got.trap->method ||
          ref.trap->pc != got.trap->pc))) {
        add("trap: ref=" + trapString(ref.trap) +
            " got=" + trapString(got.trap));
    }

    if (ref.output != got.output)
        add("output: ref=" + outputString(ref.output) +
            " got=" + outputString(got.output));

    if (compare_digest && ref.digestValid && got.digestValid &&
        ref.digest != got.digest) {
        std::ostringstream os;
        os << "heap digest: ref=" << std::hex << ref.digest
           << " got=" << got.digest;
        add(os.str());
    }
}

/** Region tuning that actually forms regions on tiny generated
 *  programs (the paper's defaults target 200-op traces). */
core::RegionConfig
smallProgramRegions()
{
    core::RegionConfig rc;
    rc.loopPathThreshold = 20;
    rc.targetSize = 40;
    rc.minRegionInstrs = 4;
    return rc;
}

opt::OptContext
atomicOptContext(const vm::Profile &profile)
{
    opt::OptContext ctx;
    ctx.profile = &profile;
    // Mirror core::compileProgram's atomic configuration so the
    // harness exercises the same pipeline the experiments compile
    // with (partial inlining + the polymorphic-callee refusal).
    ctx.partialInlineLimit = 140;
    ctx.refusePolymorphicCallees = true;
    return ctx;
}

/** Pipeline prefix names, shallow to deep. The harness evaluates
 *  every one of them so a divergence names the first pass stage that
 *  broke equivalence. */
const char *const kPrefixNames[] = {
    "translate",     // bytecode -> IR only
    "inline+scalar", // inline fixpoint with scalar passes
    "unroll",        // = the baseline compiler's final module
    "regions",       // atomic region formation
    "sle",           // speculative lock elision
    "region-scalar", // scalar pipeline over isolated hot paths
    "postdom",       // post-dominance check elimination
};
constexpr int kNumPrefixes = 7;
constexpr int kBaselinePrefix = 2;
constexpr int kAtomicPrefix = 5;
constexpr int kPostdomPrefix = 6;

/** Rebuild the module at pipeline-prefix `depth`. Modules are not
 *  copyable (blocks are unique_ptrs), but translation and every pass
 *  are deterministic, so rebuilding from bytecode yields the same
 *  module a snapshot would. */
ir::Module
buildPrefixModule(const vm::Program &prog, const vm::Profile &profile,
                  int depth)
{
    const opt::OptContext ctx = atomicOptContext(profile);
    const core::RegionConfig rc = smallProgramRegions();

    ir::Module mod = ir::translateProgram(prog, &profile);
    if (depth >= 1) {
        // Inline fixpoint interleaved with scalar passes (the first
        // half of optimizeModule).
        for (int round = 0; round < 4; ++round) {
            const bool inlined = opt::inlineCalls(mod, ctx);
            for (auto &[mid, func] : mod.funcs)
                opt::runScalarPipeline(func, ctx);
            if (!inlined)
                break;
        }
    }
    if (depth >= 2) {
        for (auto &[mid, func] : mod.funcs) {
            if (opt::unrollLoops(func, ctx))
                opt::runScalarPipeline(func, ctx);
        }
    }
    if (depth >= 3) {
        for (auto &[mid, func] : mod.funcs)
            core::formRegions(func, rc);
    }
    if (depth >= 4) {
        for (auto &[mid, func] : mod.funcs)
            core::elideLocks(func);
    }
    if (depth >= 5) {
        for (auto &[mid, func] : mod.funcs)
            opt::runScalarPipeline(func, ctx);
    }
    if (depth >= 6) {
        for (auto &[mid, func] : mod.funcs) {
            if (core::postdomCheckElim(func) > 0)
                opt::runScalarPipeline(func, ctx);
        }
    }
    for (auto &[mid, func] : mod.funcs)
        ir::verifyOrDie(func);
    return mod;
}

} // namespace

uint64_t
heapDigest(const vm::Heap &heap)
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&](uint64_t word) {
        h ^= word;
        h *= 0x100000001b3ull;
    };
    const uint64_t mark = heap.allocMark();
    for (uint64_t addr = vm::layout::POISON_WORDS; addr < mark; ++addr)
        mix(static_cast<uint64_t>(heap.load(addr)));
    mix(mark);
    return h;
}

std::string
DiffReport::summary() const
{
    std::ostringstream os;
    if (skipped) {
        os << "skipped: " << skipReason;
        return os.str();
    }
    os << executorRuns << " runs, " << prefixesRun << " prefixes"
       << (trapped ? ", trapped" : "")
       << (threaded ? ", threaded" : "");
    for (const auto &d : divergences)
        os << "\n  [" << d.stage << "] " << d.detail;
    return os.str();
}

DiffReport
runDiff(const vm::Program &prog, bool threaded, const DiffOptions &opt)
{
    DiffReport report;
    report.threaded = threaded;

    // --- Reference: the plain bytecode interpreter. ------------------
    vm::Interpreter ref_interp(prog, nullptr, opt.heapWords);
    Outcome ref;
    try {
        const vm::InterpResult r = ref_interp.run(opt.interpMaxSteps);
        ref.completed = r.completed;
        ref.trap = r.trap;
    } catch (const vm::Trap &t) {
        ref.trap = t;
    }
    ref.output = ref_interp.output();
    ref.digest = heapDigest(ref_interp.heap());
    ref.digestValid = true;
    report.executorRuns++;
    report.trapped = ref.trap.has_value();

    if (!ref.completed && !ref.trap) {
        report.skipped = true;
        report.skipReason = "reference interpreter hit step budget";
        return report;
    }

    // --- Profiling interpreter (must not perturb semantics). ---------
    vm::Profile profile(prog);
    vm::Interpreter prof_interp(prog, &profile, opt.heapWords);
    {
        Outcome got;
        try {
            const vm::InterpResult r =
                prof_interp.run(opt.interpMaxSteps);
            got.completed = r.completed;
            got.trap = r.trap;
        } catch (const vm::Trap &t) {
            got.trap = t;
        }
        got.output = prof_interp.output();
        got.digest = heapDigest(prof_interp.heap());
        got.digestValid = true;
        report.executorRuns++;
        compareOutcome(report, "interp+profile", ref, got, true);
    }

    // --- IR evaluator at every pipeline prefix. ----------------------
    // The evaluator rejects Spawn, so threaded programs only exercise
    // interpreter vs machine. Allocation order is preserved by every
    // pass (NewObject/NewArray are side-effecting and never moved or
    // removed), so heap digests stay comparable at all prefixes.
    const ir::Module baselineMod =
        buildPrefixModule(prog, profile, kBaselinePrefix);
    const ir::Module atomicMod =
        buildPrefixModule(prog, profile, kAtomicPrefix);
    const ir::Module postdomMod =
        buildPrefixModule(prog, profile, kPostdomPrefix);

    auto runEval = [&](const ir::Module &mod, uint64_t force_abort,
                       const std::string &stage) {
        ir::Evaluator eval(mod, opt.heapWords);
        eval.forceAbortPeriod = force_abort;
        Outcome got;
        ir::EvalResult r;
        try {
            r = eval.run(opt.evalMaxSteps);
            got.completed = r.completed;
            got.trap = r.trap;
        } catch (const vm::Trap &t) {
            got.trap = t;
        }
        got.output = eval.output();
        got.digest = heapDigest(eval.finalHeap());
        got.digestValid = true;
        report.executorRuns++;
        compareOutcome(report, stage, ref, got, true);
        return r;
    };

    ir::EvalResult atomic_eval_result;
    if (!threaded) {
        for (int depth = 0; depth < kNumPrefixes; ++depth) {
            const ir::Module mod =
                (depth == kBaselinePrefix || depth == kAtomicPrefix ||
                 depth == kPostdomPrefix)
                    ? ir::Module{}
                    : buildPrefixModule(prog, profile, depth);
            const ir::Module &use =
                depth == kBaselinePrefix ? baselineMod
                : depth == kAtomicPrefix ? atomicMod
                : depth == kPostdomPrefix ? postdomMod
                                          : mod;
            const ir::EvalResult r = runEval(
                use, 0, std::string("eval:") + kPrefixNames[depth]);
            report.prefixesRun++;
            if (depth == kAtomicPrefix)
                atomic_eval_result = r;
        }
        if (opt.evalForceAbortPeriod > 0) {
            runEval(atomicMod, opt.evalForceAbortPeriod,
                    "eval:forced-abort");
        }
    }

    // --- Machine runs. -----------------------------------------------
    // Shared layout heap: codegen bakes vtable/subtype addresses.
    vm::Heap layout_heap(prog, opt.heapWords);
    const hw::LayoutInfo layout = hw::LayoutInfo::fromHeap(layout_heap);

    struct MachineOutcome
    {
        Outcome out;
        hw::MachineResult res;
    };

    auto runMachine = [&](const ir::Module &mod,
                          const hw::HwConfig &config,
                          hw::TraceSink *sink, const std::string &stage,
                          bool digest_comparable) {
        const hw::MachineProgram mp = hw::lowerModule(mod, layout);
        hw::Machine machine(mp, config, sink, opt.heapWords);
        hw::RollbackOracle oracle;
        machine.setOracle(&oracle);
        hw::BisimOracle bisim(mp);
        if (opt.withBisim) {
            if (!opt.replayCommand.empty())
                bisim.setReplayInfo(opt.replaySeed, opt.replayCommand);
            machine.setBisimOracle(&bisim);
        }
        MachineOutcome mo;
        try {
            mo.res = machine.run(opt.machineMaxUops);
            mo.out.completed = mo.res.completed;
            mo.out.trap = mo.res.trap;
        } catch (const vm::Trap &t) {
            mo.out.trap = t;
        }
        mo.out.output = mo.res.output;
        mo.out.digest = heapDigest(machine.heap());
        // The machine deliberately leaks the bump-pointer advance of
        // aborted regions, so its image is only byte-comparable to
        // the interpreter's when no region ever aborted; with threads
        // a trap freezes the other context at an interleaving-
        // dependent point.
        uint64_t aborts = 0;
        for (const auto &[key, rr] : mo.res.regions)
            aborts += rr.totalAborts();
        mo.out.digestValid = digest_comparable && aborts == 0 &&
            !(threaded && mo.out.trap.has_value());
        report.executorRuns++;
        compareOutcome(report, stage, ref, mo.out, true);
        for (const auto &d : oracle.divergences())
            report.divergences.push_back(
                {stage + ":oracle",
                 "ctx " + std::to_string(d.ctxId) + ": " + d.what});
        for (const auto &d : bisim.divergences())
            report.divergences.push_back(
                {stage + ":bisim",
                 "ctx " + std::to_string(d.ctxId) + ": " + d.what});
        return mo;
    };

    const hw::HwConfig defaults;

    // D: baseline (region-free) module — pure codegen/machine check.
    runMachine(baselineMod, defaults, nullptr, "machine:baseline",
               true);

    // A: the atomic module under default geometry.
    const MachineOutcome runA = runMachine(
        atomicMod, defaults, nullptr, "machine:atomic", true);

    // B: identical, but with the timing model observing the trace.
    // Timing must be a pure observer: architectural results (and the
    // heap image, leaks included) must match run A *exactly*.
    if (opt.withTiming) {
        hw::TimingModel timing(hw::TimingConfig::baseline());
        const MachineOutcome runB =
            runMachine(atomicMod, defaults, &timing, "machine:timing",
                       true);
        if (runB.out.output != runA.out.output ||
            runB.out.digest != runA.out.digest ||
            trapString(runB.out.trap) != trapString(runA.out.trap) ||
            runB.res.retiredUops != runA.res.retiredUops ||
            runB.res.regionAborts != runA.res.regionAborts) {
            report.divergences.push_back(
                {"machine:timing-observer",
                 "timing-attached run differs from plain run: "
                 "digest " + std::to_string(runB.out.digest) + " vs " +
                 std::to_string(runA.out.digest) + ", retired " +
                 std::to_string(runB.res.retiredUops) + " vs " +
                 std::to_string(runA.res.retiredUops)});
        }
    }

    // C: hostile geometry on the deepest module — tiny speculative
    // cache and aggressive interrupts force the abort paths.
    if (opt.hostileMachine) {
        hw::HwConfig hostile;
        hostile.l1Lines = 16;
        hostile.l1Assoc = 2;
        hostile.interruptPeriod = 997;
        runMachine(postdomMod, hostile, nullptr, "machine:hostile",
                   false);
    }

    // --- Telemetry-visible abort causes. -----------------------------
    // Explicit (assert-id) abort counts must agree between the
    // evaluator and the machine, but only when no asynchronous abort
    // source fired on the machine (an interrupt/conflict/overflow
    // abort re-executes the region and can legitimately change which
    // asserts run).
    if (!threaded) {
        uint64_t async = 0;
        std::map<std::pair<int, int>, uint64_t> machine_explicit;
        for (const auto &[key, rr] : runA.res.regions) {
            async +=
                rr.abortsByCause[static_cast<int>(
                    hw::AbortCause::Conflict)] +
                rr.abortsByCause[static_cast<int>(
                    hw::AbortCause::Overflow)] +
                rr.abortsByCause[static_cast<int>(
                    hw::AbortCause::Interrupt)] +
                rr.abortsByCause[static_cast<int>(
                    hw::AbortCause::Io)];
            for (const auto &[assert_id, count] : rr.abortsByAssert)
                machine_explicit[{key.first, assert_id}] += count;
        }
        if (async == 0 &&
            machine_explicit != atomic_eval_result.abortCounts) {
            std::ostringstream os;
            os << "explicit abort counts differ: machine={";
            for (const auto &[k, v] : machine_explicit)
                os << " m" << k.first << "/a" << k.second << "=" << v;
            os << " } eval={";
            for (const auto &[k, v] : atomic_eval_result.abortCounts)
                os << " m" << k.first << "/a" << k.second << "=" << v;
            os << " }";
            report.divergences.push_back({"abort-causes", os.str()});
        }
    }

    return report;
}

DiffReport
runDiff(const GenProgram &gp, const DiffOptions &opt)
{
    const vm::Program prog = renderProgram(gp);
    DiffOptions stamped = opt;
    if (stamped.replayCommand.empty()) {
        stamped.replaySeed = gp.seed;
        stamped.replayCommand = "fuzz_diff --masks " +
            maskName(gp.features) + " --start " +
            std::to_string(gp.seed) + " --seeds 1";
    }
    return runDiff(prog, usesThreads(gp), stamped);
}

} // namespace aregion::testing
