#include "testing/corpus.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace aregion::testing {

namespace {

void
serializeStmts(std::ostringstream &os,
               const std::vector<GenStmt> &stmts, int indent)
{
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    for (const GenStmt &s : stmts) {
        os << pad << stmtKindName(s.kind) << " " << s.a << " " << s.b
           << " " << s.c << " " << s.imm;
        if (!s.body.empty()) {
            os << " {\n";
            serializeStmts(os, s.body, indent + 1);
            os << pad << "}\n";
        } else {
            os << "\n";
        }
    }
}

struct Parser
{
    std::istringstream in;
    std::string err;
    int lineNo = 0;

    explicit Parser(const std::string &text) : in(text) {}

    bool
    fail(const std::string &what)
    {
        err = "line " + std::to_string(lineNo) + ": " + what;
        return false;
    }

    /** Next non-empty, non-comment line (still raw). */
    bool
    nextLine(std::string &line)
    {
        while (std::getline(in, line)) {
            ++lineNo;
            const size_t start = line.find_first_not_of(" \t");
            if (start == std::string::npos)
                continue;
            if (line[start] == '#')
                continue;
            line = line.substr(start);
            while (!line.empty() &&
                   (line.back() == ' ' || line.back() == '\r' ||
                    line.back() == '\t'))
                line.pop_back();
            return true;
        }
        return false;
    }

    /** Parse statements until the closing '}'. */
    bool
    parseBody(std::vector<GenStmt> &out)
    {
        std::string line;
        while (nextLine(line)) {
            if (line == "}")
                return true;
            bool open_body = false;
            if (line.size() >= 2 &&
                line.compare(line.size() - 2, 2, " {") == 0) {
                open_body = true;
                line.resize(line.size() - 2);
            }
            std::istringstream ls(line);
            std::string kind_name;
            GenStmt s;
            int64_t a = 0, b = 0, c = 0;
            if (!(ls >> kind_name >> a >> b >> c >> s.imm))
                return fail("bad statement: " + line);
            if (!stmtKindFromName(kind_name, s.kind))
                return fail("unknown statement kind: " + kind_name);
            s.a = static_cast<uint32_t>(a);
            s.b = static_cast<uint32_t>(b);
            s.c = static_cast<uint32_t>(c);
            if (open_body && !parseBody(s.body))
                return false;
            out.push_back(std::move(s));
        }
        return fail("unexpected end of file in body");
    }
};

} // namespace

std::string
serializeGenProgram(const GenProgram &gp)
{
    std::ostringstream os;
    os << "seed " << gp.seed << "\n";
    os << "features " << maskName(gp.features) << "\n";
    os << "seedA " << gp.seedA << "\n";
    os << "seedB " << gp.seedB << "\n";
    for (const auto &helper : gp.helpers) {
        os << "helper {\n";
        serializeStmts(os, helper, 1);
        os << "}\n";
    }
    os << "main {\n";
    serializeStmts(os, gp.main, 1);
    os << "}\n";
    return os.str();
}

bool
parseGenProgram(const std::string &text, GenProgram &out,
                std::string *err)
{
    GenProgram gp;
    Parser p(text);
    bool saw_main = false;
    std::string line;
    while (p.nextLine(line)) {
        std::istringstream ls(line);
        std::string word;
        ls >> word;
        if (word == "seed") {
            ls >> gp.seed;
        } else if (word == "features") {
            std::string mask;
            ls >> mask;
            if (!parseMask(mask, gp.features)) {
                p.fail("bad feature mask: " + mask);
                break;
            }
        } else if (word == "seedA") {
            ls >> gp.seedA;
        } else if (word == "seedB") {
            ls >> gp.seedB;
        } else if (word == "helper") {
            gp.helpers.emplace_back();
            if (!p.parseBody(gp.helpers.back()))
                break;
        } else if (word == "main") {
            if (!p.parseBody(gp.main))
                break;
            saw_main = true;
        } else {
            p.fail("unknown directive: " + word);
            break;
        }
    }
    if (p.err.empty() && !saw_main)
        p.fail("missing main block");
    if (!p.err.empty()) {
        if (err)
            *err = p.err;
        return false;
    }
    out = std::move(gp);
    return true;
}

bool
writeCorpusFile(const std::string &path, const GenProgram &gp,
                const std::string &comment)
{
    std::ofstream f(path);
    if (!f)
        return false;
    std::istringstream lines(comment);
    std::string line;
    while (std::getline(lines, line))
        f << "# " << line << "\n";
    f << serializeGenProgram(gp);
    return static_cast<bool>(f);
}

bool
readCorpusFile(const std::string &path, GenProgram &out,
               std::string *err)
{
    std::ifstream f(path);
    if (!f) {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    std::ostringstream content;
    content << f.rdbuf();
    return parseGenProgram(content.str(), out, err);
}

std::vector<std::string>
listCorpusFiles(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".case")
            out.push_back(entry.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace aregion::testing
