#include "testing/random_program.hh"

#include <cctype>
#include <cstdlib>

#include "support/logging.hh"
#include "vm/builder.hh"
#include "vm/verifier.hh"

namespace aregion::testing {

using namespace aregion::vm;

namespace {

const struct
{
    GenStmt::K kind;
    const char *name;
} kKindNames[] = {
    {GenStmt::K::Binop, "binop"},
    {GenStmt::K::ConstVal, "const"},
    {GenStmt::K::ArraySafe, "array_safe"},
    {GenStmt::K::FieldTrip, "field_trip"},
    {GenStmt::K::Diamond, "diamond"},
    {GenStmt::K::CallHelper, "call_helper"},
    {GenStmt::K::Loop, "loop"},
    {GenStmt::K::PrintVal, "print"},
    {GenStmt::K::VirtualDisp, "virtual"},
    {GenStmt::K::SyncCall, "sync_call"},
    {GenStmt::K::MonitorBlock, "monitor"},
    {GenStmt::K::ObjNew, "obj_new"},
    {GenStmt::K::ObjNull, "obj_null"},
    {GenStmt::K::ObjField, "obj_field"},
    {GenStmt::K::ArrNew, "arr_new"},
    {GenStmt::K::ArrNull, "arr_null"},
    {GenStmt::K::ArrRaw, "arr_raw"},
    {GenStmt::K::DivMaybe, "div_maybe"},
    {GenStmt::K::CastMaybe, "cast_maybe"},
    {GenStmt::K::NewArrayMaybe, "new_array_maybe"},
    {GenStmt::K::VirtualChain, "virtual_chain"},
    {GenStmt::K::VirtualMaybe, "virtual_maybe"},
    {GenStmt::K::ColdDiamond, "cold_diamond"},
    {GenStmt::K::Contention, "contention"},
    {GenStmt::K::MultiContext, "multi_context"},
};

const struct
{
    uint32_t bit;
    const char *name;
} kFeatureNames[] = {
    {kArrays, "arrays"},         {kObjects, "objects"},
    {kTraps, "traps"},           {kVirtualChains, "virtuals"},
    {kMonitors, "monitors"},     {kContention, "contention"},
    {kAbortShapes, "aborts"},    {kMultiContext, "multi"},
};

} // namespace

const char *
stmtKindName(GenStmt::K kind)
{
    for (const auto &e : kKindNames) {
        if (e.kind == kind)
            return e.name;
    }
    return "?";
}

bool
stmtKindFromName(const std::string &name, GenStmt::K &out)
{
    for (const auto &e : kKindNames) {
        if (name == e.name) {
            out = e.kind;
            return true;
        }
    }
    return false;
}

std::vector<uint32_t>
canonicalMasks()
{
    return {
        kLegacyScalar,
        kLegacyObjects,
        kArrays | kTraps,
        kArrays | kObjects | kMonitors | kTraps,
        kObjects | kVirtualChains,
        kObjects | kVirtualChains | kTraps,
        kArrays | kObjects | kMonitors | kAbortShapes,
        kObjects | kMonitors | kContention,
        kObjects | kMonitors | kMultiContext,
        kAllFeatures & ~(kContention | kMultiContext),
        kAllFeatures,
    };
}

bool
parseMask(const std::string &text, uint32_t &mask_out)
{
    if (text == "all") {
        mask_out = kAllFeatures;
        return true;
    }
    if (text == "legacy") {
        mask_out = kLegacyObjects;
        return true;
    }
    if (!text.empty() && (isdigit(text[0]) != 0)) {
        mask_out = static_cast<uint32_t>(
            strtoul(text.c_str(), nullptr, 0));
        return mask_out <= kAllFeatures;
    }
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t next = text.find('+', pos);
        if (next == std::string::npos)
            next = text.size();
        const std::string word = text.substr(pos, next - pos);
        bool found = false;
        for (const auto &f : kFeatureNames) {
            if (word == f.name) {
                mask |= f.bit;
                found = true;
            }
        }
        if (!found)
            return false;
        pos = next + 1;
    }
    mask_out = mask;
    return mask != 0;
}

std::string
maskName(uint32_t mask)
{
    std::string name;
    for (const auto &f : kFeatureNames) {
        if (mask & f.bit) {
            if (!name.empty())
                name += "+";
            name += f.name;
        }
    }
    return name.empty() ? "none" : name;
}

size_t
GenProgram::countStmts() const
{
    size_t n = 0;
    auto walk = [&](const std::vector<GenStmt> &stmts,
                    auto &&self) -> void {
        for (const GenStmt &s : stmts) {
            ++n;
            self(s.body, self);
        }
    };
    for (const auto &h : helpers)
        walk(h, walk);
    walk(main, walk);
    return n;
}

// --- generation --------------------------------------------------

GenStmt
RandomProgramGen::makeStmt(GenStmt::K kind)
{
    GenStmt s;
    s.kind = kind;
    s.a = static_cast<uint32_t>(rng.below(1u << 16));
    s.b = static_cast<uint32_t>(rng.below(1u << 16));
    s.c = static_cast<uint32_t>(rng.below(1u << 16));
    switch (kind) {
      case GenStmt::K::Binop: s.imm = rng.below(8); break;
      case GenStmt::K::ConstVal: s.imm = rng.range(-100, 100); break;
      case GenStmt::K::ArraySafe: s.imm = rng.range(2, 9); break;
      case GenStmt::K::FieldTrip: s.imm = rng.below(4); break;
      case GenStmt::K::Loop:
        s.imm = (features & kAbortShapes) ? rng.range(6, 24)
                                          : rng.range(1, 12);
        break;
      case GenStmt::K::VirtualDisp: s.imm = rng.below(2); break;
      case GenStmt::K::ObjNew: s.imm = rng.below(3); break;
      case GenStmt::K::ObjField: s.imm = rng.below(4); break;
      case GenStmt::K::ArrNew: s.imm = rng.range(1, 8); break;
      case GenStmt::K::DivMaybe: s.imm = rng.below(2); break;
      case GenStmt::K::CastMaybe: s.imm = rng.below(4); break;
      case GenStmt::K::VirtualChain: s.imm = rng.below(9); break;
      case GenStmt::K::ColdDiamond: s.imm = rng.range(0, 23); break;
      case GenStmt::K::Contention:
        s.imm = rng.range(3, 17);
        s.a = static_cast<uint32_t>(rng.below(6));
        break;
      case GenStmt::K::MultiContext:
        s.imm = rng.range(3, 12);               // bumps per worker
        s.a = static_cast<uint32_t>(rng.below(3));  // 2..4 workers
        break;
      default: break;
    }
    return s;
}

void
RandomProgramGen::emitStatements(std::vector<GenStmt> &out,
                                 int num_helpers, int count,
                                 int depth, bool top_level)
{
    using K = GenStmt::K;
    std::vector<K> menu{K::Binop, K::ConstVal, K::Diamond,
                        K::PrintVal};
    if (num_helpers > 0)
        menu.push_back(K::CallHelper);
    if (depth > 0) {
        menu.push_back(K::Loop);
        if (features & kAbortShapes)
            menu.push_back(K::Loop);
    }
    if (features & kArrays)
        menu.push_back(K::ArraySafe);
    if (features & kObjects) {
        menu.push_back(K::FieldTrip);
        menu.push_back(K::VirtualDisp);
        menu.push_back(K::ObjNew);
        menu.push_back(K::ObjField);
    }
    if (features & kMonitors) {
        menu.push_back(K::SyncCall);
        menu.push_back(K::MonitorBlock);
    }
    if (features & kVirtualChains) {
        menu.push_back(K::ObjNew);
        menu.push_back(K::VirtualChain);
        menu.push_back(K::VirtualMaybe);
    }
    if (features & kTraps) {
        menu.push_back(K::DivMaybe);
        menu.push_back(K::ArrNew);
        menu.push_back(K::ArrRaw);
        menu.push_back(K::NewArrayMaybe);
        menu.push_back(K::CastMaybe);
        menu.push_back(K::ObjField);
        menu.push_back(K::ObjNull);
        menu.push_back(K::ArrNull);
    }
    if (features & kAbortShapes)
        menu.push_back(K::ColdDiamond);

    for (int i = 0; i < count; ++i) {
        // At most one contention handshake per program, main only.
        if (top_level && (features & kContention) && !contentionUsed &&
            rng.chance(0.35)) {
            contentionUsed = true;
            out.push_back(makeStmt(K::Contention));
            continue;
        }
        // Same for the multi-worker pile-up (the spawned-thread
        // budget is layout::MAX_THREADS-bounded, so one per program).
        if (top_level && (features & kMultiContext) &&
            !multiContextUsed && rng.chance(0.35)) {
            multiContextUsed = true;
            out.push_back(makeStmt(K::MultiContext));
            continue;
        }
        GenStmt s = makeStmt(menu[rng.below(menu.size())]);
        if (s.kind == K::Loop) {
            emitStatements(s.body, num_helpers,
                           static_cast<int>(rng.range(1, 3)),
                           depth - 1, false);
        }
        out.push_back(std::move(s));
    }
}

GenProgram
RandomProgramGen::generate()
{
    GenProgram gp;
    gp.seed = seed;
    gp.features = features;
    const int num_helpers = static_cast<int>(rng.range(1, 3));
    for (int h = 0; h < num_helpers; ++h) {
        gp.helpers.emplace_back();
        // A helper may call previously generated helpers only.
        emitStatements(gp.helpers.back(), h, 4, 1, false);
    }
    gp.seedA = rng.range(-50, 50);
    gp.seedB = rng.range(1, 100);
    emitStatements(gp.main, num_helpers, 10, 2, true);
    return gp;
}

// --- rendering ---------------------------------------------------

namespace {

/** Program scaffolding shared by every rendered program. */
struct Scaffold
{
    ClassId box, boxA, boxB, boxC;
    int slotGet = -1;
    int slotChain = -1;
    MethodId syncBump = NO_METHOD;
    MethodId worker = NO_METHOD;
    MethodId mworker = NO_METHOD;
    std::vector<MethodId> helpers;
};

/** Typed value pools; object/array pools hold refs (or null). */
struct Pools
{
    std::vector<Reg> vals;
    std::vector<Reg> objs;
    std::vector<Reg> arrs;
    Reg loopVar = NO_REG;
    /** Helpers callable from this body: [0, callableHelpers). A
     *  helper may only call lower-indexed helpers, so rendering can
     *  never build a recursive (nonterminating) call cycle. */
    size_t callableHelpers = 0;
};

class Renderer
{
  public:
    explicit Renderer(const GenProgram &gp) : gp(gp) {}

    Program
    render()
    {
        buildScaffold();
        for (size_t h = 0; h < gp.helpers.size(); ++h) {
            auto mb = pb.define(sc.helpers[h]);
            Pools pools;
            pools.vals = {mb.arg(0), mb.arg(1)};
            pools.callableHelpers = h;
            renderStmts(mb, gp.helpers[h], pools);
            mb.ret(pickVal(mb, pools, 0));
            mb.finish();
        }
        const MethodId mm = pb.declareMethod("main", 0);
        {
            auto mb = pb.define(mm);
            Pools pools;
            pools.vals.push_back(mb.constant(gp.seedA));
            pools.vals.push_back(mb.constant(gp.seedB));
            pools.callableHelpers = sc.helpers.size();
            renderStmts(mb, gp.main, pools);
            for (Reg v : pools.vals)
                mb.print(v);
            mb.retVoid();
            mb.finish();
        }
        pb.setMain(mm);
        Program prog = pb.build();
        verifyOrDie(prog);
        return prog;
    }

  private:
    void
    buildScaffold()
    {
        sc.box = pb.declareClass("Box", {"f0", "f1", "f2", "f3"});
        sc.boxA = pb.declareClass("BoxA", {}, sc.box);
        sc.boxB = pb.declareClass("BoxB", {}, sc.box);
        sc.boxC = pb.declareClass("BoxC", {}, sc.boxA);
        {
            const MethodId m = pb.declareVirtual(sc.boxA, "get", 1);
            auto f = pb.define(m);
            f.ret(f.getField(f.self(), 0));
            f.finish();
        }
        {
            const MethodId m = pb.declareVirtual(sc.boxB, "get", 1);
            auto f = pb.define(m);
            const Reg v = f.getField(f.self(), 1);
            f.ret(f.mul(v, f.constant(3)));
            f.finish();
        }
        {
            const MethodId m = pb.declareVirtual(sc.boxC, "get", 1);
            auto f = pb.define(m);
            f.ret(f.add(f.getField(f.self(), 0),
                        f.getField(f.self(), 3)));
            f.finish();
        }
        sc.slotGet = pb.virtualSlot("get");
        {
            const MethodId m = pb.declareVirtual(sc.boxA, "chain", 2);
            auto f = pb.define(m);
            const Reg x = f.callVirtual(sc.slotGet, {f.self()});
            const Reg y = f.callVirtual(sc.slotGet, {f.arg(1)});
            f.ret(f.add(x, y));
            f.finish();
        }
        {
            const MethodId m = pb.declareVirtual(sc.boxB, "chain", 2);
            auto f = pb.define(m);
            const Reg x = f.callVirtual(sc.slotGet, {f.self()});
            const Reg y = f.callVirtual(sc.slotGet, {f.arg(1)});
            f.ret(f.sub(f.mul(x, f.constant(2)), y));
            f.finish();
        }
        {
            const MethodId m = pb.declareVirtual(sc.boxC, "chain", 2);
            auto f = pb.define(m);
            const Reg y = f.callVirtual(sc.slotGet, {f.arg(1)});
            f.ret(f.sub(y, f.getField(f.self(), 2)));
            f.finish();
        }
        sc.slotChain = pb.virtualSlot("chain");
        sc.syncBump = pb.declareMethod("bump", 2, /*sync=*/true);
        {
            auto f = pb.define(sc.syncBump);
            const Reg t = f.getField(f.self(), 2);
            f.putField(f.self(), 2, f.add(t, f.arg(1)));
            f.ret(f.getField(f.self(), 2));
            f.finish();
        }
        sc.worker = pb.declareMethod("worker", 2);
        {
            // worker(obj, n): n synchronized bumps of +1, then raise
            // the done flag (f3) under the monitor. The worker never
            // prints and never allocates, so the printed output and
            // the final heap image stay interleaving-independent.
            auto f = pb.define(sc.worker);
            const Reg obj = f.arg(0);
            const Reg n = f.arg(1);
            const Reg one = f.constant(1);
            const Reg i = f.constant(0);
            const Label loop = f.newLabel();
            const Label done = f.newLabel();
            f.bind(loop);
            f.branchCmp(Bc::CmpGe, i, n, done);
            f.callStaticVoid(sc.syncBump, {obj, one});
            f.binopTo(Bc::Add, i, i, one);
            f.jump(loop);
            f.bind(done);
            f.monitorEnter(obj);
            f.putField(obj, 3, one);
            f.monitorExit(obj);
            f.retVoid();
            f.finish();
        }
        sc.mworker = pb.declareMethod("mworker", 2);
        {
            // mworker(obj, n): like worker, but the done flag (f3)
            // counts finished workers instead of being a boolean, so
            // several mworkers can share one object and main can wait
            // for all of them.
            auto f = pb.define(sc.mworker);
            const Reg obj = f.arg(0);
            const Reg n = f.arg(1);
            const Reg one = f.constant(1);
            const Reg i = f.constant(0);
            const Label loop = f.newLabel();
            const Label done = f.newLabel();
            f.bind(loop);
            f.branchCmp(Bc::CmpGe, i, n, done);
            f.callStaticVoid(sc.syncBump, {obj, one});
            f.binopTo(Bc::Add, i, i, one);
            f.jump(loop);
            f.bind(done);
            f.monitorEnter(obj);
            const Reg d = f.getField(obj, 3);
            f.putField(obj, 3, f.add(d, one));
            f.monitorExit(obj);
            f.retVoid();
            f.finish();
        }
        for (size_t h = 0; h < gp.helpers.size(); ++h) {
            sc.helpers.push_back(pb.declareMethod(
                "helper" + std::to_string(h), 2));
        }
    }

    Reg
    pickVal(MethodBuilder &mb, Pools &pools, uint32_t sel)
    {
        if (pools.vals.empty())
            pools.vals.push_back(mb.constant(1));
        return pools.vals[sel % pools.vals.size()];
    }

    Reg
    pickObj(MethodBuilder &mb, Pools &pools, uint32_t sel)
    {
        if (pools.objs.empty())
            pools.objs.push_back(mb.newObject(sc.boxA));
        return pools.objs[sel % pools.objs.size()];
    }

    Reg
    pickArr(MethodBuilder &mb, Pools &pools, uint32_t sel)
    {
        if (pools.arrs.empty())
            pools.arrs.push_back(mb.newArray(mb.constant(4)));
        return pools.arrs[sel % pools.arrs.size()];
    }

    ClassId
    classSel(int64_t sel) const
    {
        switch (sel % 3) {
          case 0: return sc.boxA;
          case 1: return sc.boxB;
          default: return sc.boxC;
        }
    }

    /** idx <- nonneg(v) % len, always in [0, len) for len > 0. */
    Reg
    boundedIndex(MethodBuilder &mb, Reg v, Reg len)
    {
        const Reg r = mb.binop(Bc::Rem, v, len);
        const Reg r2 = mb.add(r, len);
        return mb.binop(Bc::Rem, r2, len);
    }

    void renderStmts(MethodBuilder &mb,
                     const std::vector<GenStmt> &stmts, Pools &pools);
    void renderStmt(MethodBuilder &mb, const GenStmt &s,
                    Pools &pools);

    const GenProgram &gp;
    ProgramBuilder pb;
    Scaffold sc;
};

void
Renderer::renderStmts(MethodBuilder &mb,
                      const std::vector<GenStmt> &stmts, Pools &pools)
{
    for (const GenStmt &s : stmts)
        renderStmt(mb, s, pools);
}

void
Renderer::renderStmt(MethodBuilder &mb, const GenStmt &s,
                     Pools &pools)
{
    using K = GenStmt::K;
    switch (s.kind) {
      case K::Binop: {
        static const Bc ops[] = {Bc::Add, Bc::Sub, Bc::Mul, Bc::And,
                                 Bc::Or,  Bc::Xor, Bc::CmpLt,
                                 Bc::CmpEq};
        pools.vals.push_back(mb.binop(ops[s.imm % 8],
                                      pickVal(mb, pools, s.a),
                                      pickVal(mb, pools, s.b)));
        break;
      }
      case K::ConstVal:
        pools.vals.push_back(mb.constant(s.imm));
        break;
      case K::ArraySafe: {
        const Reg len = mb.constant(s.imm);
        const Reg arr = mb.newArray(len);
        const Reg idx =
            boundedIndex(mb, pickVal(mb, pools, s.a), len);
        mb.astore(arr, idx, pickVal(mb, pools, s.b));
        pools.vals.push_back(mb.aload(arr, idx));
        pools.vals.push_back(mb.alength(arr));
        break;
      }
      case K::FieldTrip: {
        const Reg obj = mb.newObject(sc.box);
        const int field = static_cast<int>(s.imm % 4);
        mb.putField(obj, field, pickVal(mb, pools, s.a));
        pools.vals.push_back(mb.getField(obj, field));
        break;
      }
      case K::Diamond: {
        const Label els = mb.newLabel();
        const Label done = mb.newLabel();
        const Reg out = mb.newReg();
        mb.branchCmp(Bc::CmpLt, pickVal(mb, pools, s.a),
                     pickVal(mb, pools, s.b), els);
        mb.mov(out, pickVal(mb, pools, s.c));
        mb.jump(done);
        mb.bind(els);
        mb.mov(out, pickVal(mb, pools, s.a ^ 1));
        mb.bind(done);
        pools.vals.push_back(out);
        break;
      }
      case K::CallHelper: {
        if (pools.callableHelpers == 0) {
            pools.vals.push_back(mb.constant(7));
        } else {
            const MethodId callee =
                sc.helpers[s.a % pools.callableHelpers];
            pools.vals.push_back(
                mb.callStatic(callee, {pickVal(mb, pools, s.b),
                                       pickVal(mb, pools, s.c)}));
        }
        break;
      }
      case K::Loop: {
        const Reg i = mb.constant(0);
        const Reg n = mb.constant(s.imm);
        const Reg one = mb.constant(1);
        const Reg acc = mb.constant(0);
        const Label loop = mb.newLabel();
        const Label done = mb.newLabel();
        mb.bind(loop);
        mb.branchCmp(Bc::CmpGe, i, n, done);
        Pools inner;
        inner.vals = {pickVal(mb, pools, s.a), i, acc};
        inner.objs = pools.objs;
        inner.arrs = pools.arrs;
        inner.loopVar = i;
        inner.callableHelpers = pools.callableHelpers;
        renderStmts(mb, s.body, inner);
        mb.binopTo(Bc::Add, acc, acc, inner.vals.back());
        mb.binopTo(Bc::Add, i, i, one);
        mb.jump(loop);
        mb.bind(done);
        pools.vals.push_back(acc);
        break;
      }
      case K::PrintVal:
        mb.print(pickVal(mb, pools, s.a));
        break;
      case K::VirtualDisp: {
        const ClassId which = (s.imm % 2) ? sc.boxB : sc.boxA;
        const Reg obj = mb.newObject(which);
        mb.putField(obj, 0, pickVal(mb, pools, s.a));
        mb.putField(obj, 1, pickVal(mb, pools, s.b));
        pools.vals.push_back(mb.callVirtual(sc.slotGet, {obj}));
        pools.vals.push_back(mb.instanceOf(obj, sc.boxA));
        break;
      }
      case K::SyncCall: {
        const Reg obj = mb.newObject(sc.box);
        pools.vals.push_back(mb.callStatic(
            sc.syncBump, {obj, pickVal(mb, pools, s.a)}));
        pools.vals.push_back(mb.callStatic(
            sc.syncBump, {obj, pickVal(mb, pools, s.b)}));
        break;
      }
      case K::MonitorBlock: {
        const Reg obj = mb.newObject(sc.box);
        mb.monitorEnter(obj);
        mb.putField(obj, 3, pickVal(mb, pools, s.a));
        pools.vals.push_back(mb.getField(obj, 3));
        mb.monitorExit(obj);
        break;
      }
      case K::ObjNew: {
        const Reg obj = mb.newObject(classSel(s.imm));
        mb.putField(obj, 0, pickVal(mb, pools, s.a));
        mb.putField(obj, 1, pickVal(mb, pools, s.b));
        pools.objs.push_back(obj);
        break;
      }
      case K::ObjNull:
        pools.objs.push_back(mb.constant(0));
        break;
      case K::ObjField: {
        const Reg obj = pickObj(mb, pools, s.a);
        const int field = static_cast<int>(s.imm % 4);
        mb.putField(obj, field, pickVal(mb, pools, s.b));
        pools.vals.push_back(mb.getField(obj, field));
        break;
      }
      case K::ArrNew:
        pools.arrs.push_back(mb.newArray(mb.constant(s.imm)));
        break;
      case K::ArrNull:
        pools.arrs.push_back(mb.constant(0));
        break;
      case K::ArrRaw: {
        const Reg arr = pickArr(mb, pools, s.a);
        Reg idx;
        if (s.c & 1) {
            idx = boundedIndex(mb, pickVal(mb, pools, s.b),
                               mb.alength(arr));
        } else {
            idx = pickVal(mb, pools, s.b);
        }
        mb.astore(arr, idx, pickVal(mb, pools, s.c >> 1));
        pools.vals.push_back(mb.aload(arr, idx));
        break;
      }
      case K::DivMaybe:
        pools.vals.push_back(
            mb.binop((s.imm & 1) ? Bc::Rem : Bc::Div,
                     pickVal(mb, pools, s.a),
                     pickVal(mb, pools, s.b)));
        break;
      case K::CastMaybe: {
        const Reg obj = pickObj(mb, pools, s.a);
        const ClassId target =
            (s.imm % 4 == 3) ? sc.box : classSel(s.imm);
        mb.checkCast(obj, target);
        pools.vals.push_back(mb.getField(obj, 0));
        break;
      }
      case K::NewArrayMaybe: {
        // Bound the magnitude so a huge length cannot blow the heap
        // (an assert, not a trap); negatives still reach NewArray.
        const Reg len = mb.binop(Bc::Rem, pickVal(mb, pools, s.a),
                                 mb.constant(17));
        const Reg arr = mb.newArray(len);
        pools.vals.push_back(mb.alength(arr));
        pools.arrs.push_back(arr);
        break;
      }
      case K::VirtualChain: {
        const Reg o1 = mb.newObject(classSel(s.imm % 3));
        const Reg o2 = mb.newObject(classSel((s.imm / 3) % 3));
        mb.putField(o1, 0, pickVal(mb, pools, s.a));
        mb.putField(o2, 1, pickVal(mb, pools, s.b));
        mb.putField(o2, 3, pickVal(mb, pools, s.c));
        pools.vals.push_back(
            mb.callVirtual(sc.slotChain, {o1, o2}));
        pools.objs.push_back(o1);
        break;
      }
      case K::VirtualMaybe: {
        const Reg obj = pickObj(mb, pools, s.a);
        pools.vals.push_back(mb.callVirtual(sc.slotGet, {obj}));
        break;
      }
      case K::ColdDiamond: {
        // Hot path nearly always; the cold path fires on one loop
        // iteration, so region formation converts the cold edge to
        // an assert that aborts exactly once per loop at runtime.
        const Reg obj = pickObj(mb, pools, s.c);
        const Label cold = mb.newLabel();
        const Label done = mb.newLabel();
        const Reg out = mb.newReg();
        const Reg k = mb.constant(s.imm);
        const Reg lhs = (pools.loopVar != NO_REG)
                            ? pools.loopVar
                            : pickVal(mb, pools, s.a);
        mb.branchCmp(Bc::CmpEq, lhs, k, cold);
        mb.mov(out, pickVal(mb, pools, s.b));
        mb.jump(done);
        mb.bind(cold);
        mb.putField(obj, 3, pickVal(mb, pools, s.b ^ 3));
        mb.getFieldTo(out, obj, 3);
        mb.bind(done);
        pools.vals.push_back(out);
        break;
      }
      case K::Contention: {
        // Deterministic handshake: the shared counter's final value
        // is initial + bumps regardless of interleaving, and main
        // only reads it after the worker raises the done flag.
        const Reg obj = mb.newObject(sc.box);
        const Reg one = mb.constant(1);
        mb.putField(obj, 2, pickVal(mb, pools, s.b));
        mb.putField(obj, 3, mb.constant(0));
        mb.spawn(sc.worker, {obj, mb.constant(s.imm)});
        for (uint32_t i = 0; i < s.a % 6; ++i)
            mb.callStaticVoid(sc.syncBump, {obj, one});
        const Label spin = mb.newLabel();
        const Reg flag = mb.newReg();
        mb.bind(spin);
        mb.monitorEnter(obj);
        mb.getFieldTo(flag, obj, 3);
        mb.monitorExit(obj);
        mb.branchCmp(Bc::CmpEq, flag, mb.constant(0), spin);
        pools.vals.push_back(mb.getField(obj, 2));
        break;
      }
      case K::MultiContext: {
        // 2-4 workers all bumping one shared counter: the smallest
        // program shape on which genuine cross-context conflict
        // aborts occur under SLE. Final value is initial + k*imm on
        // every interleaving; main waits until the done count (f3)
        // reaches k before reading.
        const int k = 2 + static_cast<int>(s.a % 3);
        const Reg obj = mb.newObject(sc.box);
        mb.putField(obj, 2, pickVal(mb, pools, s.b));
        mb.putField(obj, 3, mb.constant(0));
        for (int w = 0; w < k; ++w)
            mb.spawn(sc.mworker, {obj, mb.constant(s.imm)});
        const Reg want = mb.constant(k);
        const Label spin = mb.newLabel();
        const Label ready = mb.newLabel();
        const Reg flag = mb.newReg();
        mb.bind(spin);
        mb.safepoint();
        mb.monitorEnter(obj);
        mb.getFieldTo(flag, obj, 3);
        mb.monitorExit(obj);
        mb.branchCmp(Bc::CmpGe, flag, want, ready);
        mb.jump(spin);
        mb.bind(ready);
        pools.vals.push_back(mb.getField(obj, 2));
        break;
      }
    }
}

template <typename Fn>
void
walkStmts(const std::vector<GenStmt> &stmts, Fn &&fn)
{
    for (const GenStmt &s : stmts) {
        fn(s);
        walkStmts(s.body, fn);
    }
}

template <typename Fn>
void
walkProgram(const GenProgram &gp, Fn &&fn)
{
    for (const auto &h : gp.helpers)
        walkStmts(h, fn);
    walkStmts(gp.main, fn);
}

} // namespace

Program
renderProgram(const GenProgram &gp)
{
    Renderer renderer(gp);
    return renderer.render();
}

size_t
renderedMainSize(const GenProgram &gp)
{
    const Program prog = renderProgram(gp);
    return prog.method(prog.mainMethod).code.size();
}

bool
usesThreads(const GenProgram &gp)
{
    bool found = false;
    walkProgram(gp, [&](const GenStmt &s) {
        found |= s.kind == GenStmt::K::Contention ||
            s.kind == GenStmt::K::MultiContext;
    });
    return found;
}

bool
mayTrap(const GenProgram &gp)
{
    bool found = false;
    walkProgram(gp, [&](const GenStmt &s) {
        switch (s.kind) {
          case GenStmt::K::ObjNull:
          case GenStmt::K::ArrNull:
          case GenStmt::K::ArrRaw:
          case GenStmt::K::DivMaybe:
          case GenStmt::K::CastMaybe:
          case GenStmt::K::NewArrayMaybe:
            found = true;
            break;
          default:
            break;
        }
    });
    return found;
}

} // namespace aregion::testing
