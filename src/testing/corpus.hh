/**
 * @file
 * Replayable corpus format for diverging (or once-diverging)
 * generated programs.
 *
 * An entry is a small text file (docs/FUZZING.md has the grammar):
 *
 *     # free-form comment lines
 *     seed 42
 *     features traps+arrays
 *     seedA -3
 *     seedB 17
 *     helper {
 *       binop 0 1 0 5
 *     }
 *     main {
 *       loop 0 0 0 3 {
 *         div_maybe 1 0 0 0
 *       }
 *       print 0 0 0 0
 *     }
 *
 * Statement lines are `<kind> <a> <b> <c> <imm>` with an optional
 * trailing `{` opening a nested body. The stored structure is the
 * minimized GenProgram itself — not the seed — so replay does not
 * depend on generator evolution: old corpus entries keep reproducing
 * the same bytecode forever.
 */

#ifndef AREGION_TESTING_CORPUS_HH
#define AREGION_TESTING_CORPUS_HH

#include <string>
#include <vector>

#include "testing/random_program.hh"

namespace aregion::testing {

std::string serializeGenProgram(const GenProgram &gp);

/** Parse a corpus entry; on failure returns false and sets *err. */
bool parseGenProgram(const std::string &text, GenProgram &out,
                     std::string *err = nullptr);

bool writeCorpusFile(const std::string &path, const GenProgram &gp,
                     const std::string &comment);
bool readCorpusFile(const std::string &path, GenProgram &out,
                    std::string *err = nullptr);

/** All `*.case` files under dir, sorted by name (empty if none). */
std::vector<std::string> listCorpusFiles(const std::string &dir);

} // namespace aregion::testing

#endif // AREGION_TESTING_CORPUS_HH
