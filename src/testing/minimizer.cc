#include "testing/minimizer.hh"

namespace aregion::testing {

namespace {

/** Statement address: [stream, i0, i1, ...] where stream h indexes
 *  helpers[h] and stream == helpers.size() is main; the rest walk
 *  nested bodies. */
using Addr = std::vector<size_t>;

std::vector<GenStmt> *
streamOf(GenProgram &gp, size_t stream)
{
    if (stream < gp.helpers.size())
        return &gp.helpers[stream];
    return &gp.main;
}

GenStmt *
stmtAt(GenProgram &gp, const Addr &addr)
{
    std::vector<GenStmt> *stmts = streamOf(gp, addr[0]);
    GenStmt *s = nullptr;
    for (size_t i = 1; i < addr.size(); ++i) {
        if (addr[i] >= stmts->size())
            return nullptr;
        s = &(*stmts)[addr[i]];
        stmts = &s->body;
    }
    return s;
}

void
collectIn(const std::vector<GenStmt> &stmts, Addr prefix,
          std::vector<Addr> &out)
{
    for (size_t i = 0; i < stmts.size(); ++i) {
        Addr addr = prefix;
        addr.push_back(i);
        out.push_back(addr);
        collectIn(stmts[i].body, addr, out);
    }
}

std::vector<Addr>
collectAddrs(const GenProgram &gp)
{
    std::vector<Addr> out;
    GenProgram &g = const_cast<GenProgram &>(gp);
    for (size_t h = 0; h < gp.helpers.size(); ++h)
        collectIn(*streamOf(g, h), {h}, out);
    collectIn(gp.main, {gp.helpers.size()}, out);
    return out;
}

bool
removeAt(GenProgram &gp, const Addr &addr)
{
    std::vector<GenStmt> *stmts = streamOf(gp, addr[0]);
    for (size_t i = 1; i + 1 < addr.size(); ++i) {
        if (addr[i] >= stmts->size())
            return false;
        stmts = &(*stmts)[addr[i]].body;
    }
    const size_t idx = addr.back();
    if (idx >= stmts->size())
        return false;
    stmts->erase(stmts->begin() + static_cast<ptrdiff_t>(idx));
    return true;
}

/** Replace a Loop with its body, spliced in place. */
bool
hoistAt(GenProgram &gp, const Addr &addr)
{
    std::vector<GenStmt> *stmts = streamOf(gp, addr[0]);
    for (size_t i = 1; i + 1 < addr.size(); ++i) {
        if (addr[i] >= stmts->size())
            return false;
        stmts = &(*stmts)[addr[i]].body;
    }
    const size_t idx = addr.back();
    if (idx >= stmts->size())
        return false;
    std::vector<GenStmt> body = std::move((*stmts)[idx].body);
    stmts->erase(stmts->begin() + static_cast<ptrdiff_t>(idx));
    stmts->insert(stmts->begin() + static_cast<ptrdiff_t>(idx),
                  body.begin(), body.end());
    return true;
}

} // namespace

GenProgram
minimizeProgram(const GenProgram &gp, const Predicate &still_fails,
                MinimizeStats *stats)
{
    MinimizeStats local;
    MinimizeStats &st = stats ? *stats : local;
    st.stmtsBefore = gp.countStmts();

    auto check = [&](const GenProgram &candidate) {
        st.predicateCalls++;
        return still_fails(candidate);
    };

    GenProgram best = gp;
    if (!check(best)) {
        st.stmtsAfter = st.stmtsBefore;
        return best;
    }

    bool changed = true;
    while (changed) {
        changed = false;
        st.rounds++;

        // Drop whole helpers, last first (nothing references a
        // higher-indexed helper, and CallHelper sites resolve modulo
        // the remaining count).
        for (size_t h = best.helpers.size(); h-- > 0;) {
            GenProgram candidate = best;
            candidate.helpers.erase(candidate.helpers.begin() +
                                    static_cast<ptrdiff_t>(h));
            if (check(candidate)) {
                best = std::move(candidate);
                changed = true;
            }
        }

        // Delete statements one at a time, deepest-last first so a
        // nested statement goes before its enclosing loop.
        bool removed = true;
        while (removed) {
            removed = false;
            const std::vector<Addr> addrs = collectAddrs(best);
            for (size_t i = addrs.size(); i-- > 0;) {
                GenProgram candidate = best;
                if (!removeAt(candidate, addrs[i]))
                    continue;
                if (check(candidate)) {
                    best = std::move(candidate);
                    changed = true;
                    removed = true;
                    break;  // addresses are stale; re-collect
                }
            }
        }

        // Loops: hoist the body out entirely, else try one trip.
        for (const Addr &addr : collectAddrs(best)) {
            GenStmt *s = stmtAt(best, addr);
            if (!s || s->kind != GenStmt::K::Loop)
                continue;
            {
                GenProgram candidate = best;
                if (hoistAt(candidate, addr) && check(candidate)) {
                    best = std::move(candidate);
                    changed = true;
                    break;  // structure changed; restart the scan
                }
            }
            if (s->imm > 1) {
                GenProgram candidate = best;
                stmtAt(candidate, addr)->imm = 1;
                if (check(candidate)) {
                    best = std::move(candidate);
                    changed = true;
                }
            }
        }

        // Canonicalize operands: smaller selectors and immediates
        // make the corpus entry easier to read and diff.
        for (const Addr &addr : collectAddrs(best)) {
            const GenStmt *s = stmtAt(best, addr);
            if (!s)
                continue;
            for (auto field : {&GenStmt::a, &GenStmt::b, &GenStmt::c}) {
                if (s->*field == 0)
                    continue;
                GenProgram candidate = best;
                stmtAt(candidate, addr)->*field = 0;
                if (check(candidate)) {
                    best = std::move(candidate);
                    changed = true;
                    s = stmtAt(best, addr);
                }
            }
            if (s->imm != 0 && s->imm != 1) {
                for (int64_t target : {int64_t{0}, int64_t{1}}) {
                    GenProgram candidate = best;
                    stmtAt(candidate, addr)->imm = target;
                    if (check(candidate)) {
                        best = std::move(candidate);
                        changed = true;
                        break;
                    }
                }
            }
        }
    }

    st.stmtsAfter = best.countStmts();
    return best;
}

} // namespace aregion::testing
