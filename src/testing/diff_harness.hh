/**
 * @file
 * Three-way differential execution harness.
 *
 * One program is executed by every executor in the stack — the
 * reference bytecode interpreter, the IR evaluator at every
 * pass-pipeline prefix (translation only, after inlining, after the
 * full scalar pipeline, after region formation, after SLE, after the
 * post-region scalar pipeline, and after post-dominance check
 * elimination), and the hardware machine simulator with and without
 * a timing model attached, under default and hostile geometries,
 * with the rollback oracle armed — and every observable is compared:
 *
 *   - printed output (including the prefix printed before a trap),
 *   - trap kind, trapping method, and bytecode pc,
 *   - a final heap digest (scoped: skipped where executors
 *     legitimately differ, see docs/FUZZING.md),
 *   - telemetry-visible abort causes (explicit abort counts per
 *     assert id must agree between the evaluator and the machine
 *     when no asynchronous abort source fired),
 *   - the rollback oracle's register/pc/heap cross-checks,
 *   - the deopt bisimulation oracle's replay equivalence: every
 *     abort is re-executed non-speculatively from its checkpoint and
 *     must reach the same observable state the hardware left behind.
 *
 * Any mismatch is returned as a DivergenceRecord naming the stage.
 */

#ifndef AREGION_TESTING_DIFF_HARNESS_HH
#define AREGION_TESTING_DIFF_HARNESS_HH

#include <string>
#include <vector>

#include "testing/random_program.hh"
#include "vm/heap.hh"
#include "vm/program.hh"

namespace aregion::testing {

/** Harness knobs (defaults are what fuzz_diff and ctest use). */
struct DiffOptions
{
    /** Run the machine under a hostile geometry (tiny speculative
     *  cache, aggressive interrupts) as an extra variant. */
    bool hostileMachine = true;

    /** Attach a timing model to one machine run and require it to be
     *  a pure observer (identical architectural results). */
    bool withTiming = true;

    /** Attach the deopt bisimulation oracle to every machine run:
     *  each abort is replayed non-speculatively from its checkpoint
     *  and the replay's observable state must match the post-abort
     *  machine state (the fourth differential check). */
    bool withBisim = true;

    /** Reproduction stamp appended to bisim divergence reports
     *  (fuzzer seed plus a one-command replay line). Set by the
     *  GenProgram overload of runDiff; empty command = no stamp. */
    uint64_t replaySeed = 0;
    std::string replayCommand;

    /** Forced abort period for the evaluator's rollback stress run
     *  (0 disables that variant). */
    uint64_t evalForceAbortPeriod = 3;

    /** Interpreter/evaluator/machine step budgets. Generated
     *  programs are tiny; a budget hit is reported as a skip. */
    uint64_t interpMaxSteps = 1ull << 24;
    uint64_t evalMaxSteps = 1ull << 24;
    uint64_t machineMaxUops = 1ull << 26;

    uint64_t heapWords = 1ull << 22;
};

struct DivergenceRecord
{
    std::string stage;      ///< executor/comparison that disagreed
    std::string detail;     ///< human-readable mismatch description
};

struct DiffReport
{
    std::vector<DivergenceRecord> divergences;

    bool skipped = false;       ///< budget exhausted; nothing compared
    std::string skipReason;

    bool trapped = false;       ///< the reference run trapped
    bool threaded = false;      ///< program spawns threads
    int executorRuns = 0;       ///< executions performed
    int prefixesRun = 0;        ///< evaluator pipeline prefixes run

    bool diverged() const { return !divergences.empty(); }
    std::string summary() const;
};

/** FNV-1a digest of the mapped heap image up to the allocation
 *  watermark (plus the watermark itself). */
uint64_t heapDigest(const vm::Heap &heap);

/** Run the full differential comparison for one program.
 *  @param threaded  true if the program spawns threads (the
 *                   evaluator is skipped: it rejects Spawn). */
DiffReport runDiff(const vm::Program &prog, bool threaded,
                   const DiffOptions &opt = {});

/** Convenience: render and compare a generated program. */
DiffReport runDiff(const GenProgram &gp, const DiffOptions &opt = {});

} // namespace aregion::testing

#endif // AREGION_TESTING_DIFF_HARNESS_HH
