/**
 * @file
 * Deterministic structural test-case minimizer.
 *
 * Shrinks a diverging GenProgram while a caller-supplied predicate
 * ("still diverges") keeps holding. Because GenStmt operands are
 * abstract pool indices resolved modulo the live pool size, every
 * structural edit still renders to a valid program, so the minimizer
 * can freely delete statements, drop helpers, hoist loop bodies, and
 * zero operands without a validity oracle.
 *
 * All passes are greedy and ordered, so minimization is a pure
 * function of (input, predicate): re-running it on a corpus entry
 * reproduces the same minimal form byte-for-byte.
 */

#ifndef AREGION_TESTING_MINIMIZER_HH
#define AREGION_TESTING_MINIMIZER_HH

#include <cstddef>
#include <functional>

#include "testing/random_program.hh"

namespace aregion::testing {

using Predicate = std::function<bool(const GenProgram &)>;

struct MinimizeStats
{
    size_t stmtsBefore = 0;
    size_t stmtsAfter = 0;
    size_t predicateCalls = 0;
    int rounds = 0;
};

/**
 * Shrink `gp` to a local minimum under `still_fails`.
 * @pre still_fails(gp) is true (checked; returned unchanged if not).
 */
GenProgram minimizeProgram(const GenProgram &gp,
                           const Predicate &still_fails,
                           MinimizeStats *stats = nullptr);

} // namespace aregion::testing

#endif // AREGION_TESTING_MINIMIZER_HH
