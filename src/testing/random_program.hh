/**
 * @file
 * First-class random program generator for differential fuzzing.
 *
 * The generator is split in two phases so diverging programs can be
 * minimized structurally:
 *
 *   1. generate(): a seed + feature mask is expanded into a GenProgram,
 *      a small statement tree whose operands are abstract pool indices
 *      (resolved modulo the live pool size at render time, so removing
 *      any statement still yields a valid program);
 *   2. renderProgram(): the GenProgram is deterministically lowered to
 *      a vm::Program through the ProgramBuilder.
 *
 * Feature bits gate which statement kinds may appear. Without kTraps
 * every generated program terminates and is trap-free (the legacy
 * property-test contract); with kTraps the generator deliberately
 * emits null derefs, out-of-bounds accesses, divides by zero, failing
 * casts, and negative array sizes at random depths. Value pools are
 * typed (ints vs object refs vs array refs) so a trap is always one
 * of the six architectural TrapKinds and never a wild reference: the
 * interpreter asserts (process abort) on corrupt refs, which would
 * kill the fuzzer instead of feeding it.
 */

#ifndef AREGION_TESTING_RANDOM_PROGRAM_HH
#define AREGION_TESTING_RANDOM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/random.hh"
#include "vm/program.hh"

namespace aregion::testing {

/** Feature mask bits (docs/FUZZING.md). */
enum Feature : uint32_t {
    kArrays        = 1u << 0,   ///< bounds-guarded array round trips
    kObjects       = 1u << 1,   ///< objects, fields, virtual dispatch
    kTraps         = 1u << 2,   ///< trapping constructs at any depth
    kVirtualChains = 1u << 3,   ///< virtual methods calling virtuals
    kMonitors      = 1u << 4,   ///< monitor blocks + sync methods
    kContention    = 1u << 5,   ///< spawned worker contending a lock
    kAbortShapes   = 1u << 6,   ///< biased hot/cold diamonds in loops
    kMultiContext  = 1u << 7,   ///< 2-4 workers contending one object
};

/** The legacy tests/random_program.hh profiles. */
inline constexpr uint32_t kLegacyScalar = kArrays;
inline constexpr uint32_t kLegacyObjects = kArrays | kObjects | kMonitors;
inline constexpr uint32_t kAllFeatures = (1u << 8) - 1;

/** The canonical masks the fuzz smoke sweeps (docs/FUZZING.md). */
std::vector<uint32_t> canonicalMasks();

/** Parse "all", "legacy", a feature name list ("traps+arrays"), or a
 *  hex/decimal literal into a mask; returns false on garbage. */
bool parseMask(const std::string &text, uint32_t &mask_out);
std::string maskName(uint32_t mask);

/**
 * One abstract statement. a/b/c are pool selectors (reduced modulo
 * the relevant pool size when rendered); imm is a literal whose
 * meaning depends on the kind. Loop and ColdDiamond carry a body.
 */
struct GenStmt
{
    enum class K : uint8_t {
        Binop,          ///< imm = operator index; a,b = int operands
        ConstVal,       ///< imm = value
        ArraySafe,      ///< guarded store+load round trip; imm = len
        FieldTrip,      ///< fresh object field round trip; imm = field
        Diamond,        ///< if/else producing one value
        CallHelper,     ///< a = helper selector; b,c = int args
        Loop,           ///< imm = trip count; body executed per trip
        PrintVal,       ///< print an int pool value
        VirtualDisp,    ///< fresh BoxA/BoxB receiver; imm = class sel
        SyncCall,       ///< two synchronized bumps on a fresh object
        MonitorBlock,   ///< enter/putfield/getfield/exit, fresh object
        ObjNew,         ///< push fresh BoxA/BoxB/BoxC into obj pool
        ObjNull,        ///< push null into obj pool (kTraps)
        ObjField,       ///< field round trip on pooled obj (may trap)
        ArrNew,         ///< push fresh array into arr pool; imm = len
        ArrNull,        ///< push null into arr pool (kTraps)
        ArrRaw,         ///< unguarded astore+aload on pooled array
        DivMaybe,       ///< imm&1 ? rem : div, unguarded divisor
        CastMaybe,      ///< checkcast pooled obj to imm-selected class
        NewArrayMaybe,  ///< newArray(small signed value), may be < 0
        VirtualChain,   ///< two fresh receivers, chained virtual call
        VirtualMaybe,   ///< virtual call on pooled obj (may be null)
        ColdDiamond,    ///< biased branch, cold on iteration imm
        Contention,     ///< spawn worker; imm = worker bumps, a = main
        MultiContext,   ///< 2 + a%3 workers bump one shared object
    };

    K kind;
    uint32_t a = 0, b = 0, c = 0;
    int64_t imm = 0;
    std::vector<GenStmt> body;
};

const char *stmtKindName(GenStmt::K kind);
bool stmtKindFromName(const std::string &name, GenStmt::K &out);

/** A generated program in structural form. */
struct GenProgram
{
    uint64_t seed = 0;
    uint32_t features = 0;
    int64_t seedA = 0;          ///< main's first seed constant
    int64_t seedB = 1;          ///< main's second seed constant
    std::vector<std::vector<GenStmt>> helpers;
    std::vector<GenStmt> main;

    size_t countStmts() const;
};

/** Deterministically lower a GenProgram to executable bytecode. */
vm::Program renderProgram(const GenProgram &gp);

/** Total bytecodes in the rendered main method (minimizer metric). */
size_t renderedMainSize(const GenProgram &gp);

/** True if the rendered program spawns threads (Contention). */
bool usesThreads(const GenProgram &gp);

/** True if the program may execute a trapping construct. */
bool mayTrap(const GenProgram &gp);

/** Seed + feature mask -> GenProgram. */
class RandomProgramGen
{
  public:
    explicit RandomProgramGen(uint64_t seed,
                              uint32_t features = kLegacyScalar)
        : rng(seed), seed(seed), features(features)
    {
    }

    GenProgram generate();

  private:
    void emitStatements(std::vector<GenStmt> &out, int num_helpers,
                        int count, int depth, bool top_level);
    GenStmt makeStmt(GenStmt::K kind);

    Rng rng;
    uint64_t seed;
    uint32_t features;
    bool contentionUsed = false;
    bool multiContextUsed = false;
};

} // namespace aregion::testing

#endif // AREGION_TESTING_RANDOM_PROGRAM_HH
