#include "vm/program.hh"

#include "support/logging.hh"

namespace aregion::vm {

ClassId
Program::addClass(ClassInfo info)
{
    info.id = static_cast<ClassId>(classes.size());
    if (info.superId != NO_CLASS) {
        const ClassInfo &super = cls(info.superId);
        // Flatten: inherited fields first, then own fields; inherit
        // vtable entries not explicitly overridden.
        std::vector<std::string> merged = super.fields;
        merged.insert(merged.end(), info.fields.begin(), info.fields.end());
        info.fields = std::move(merged);
        if (info.vtable.size() < super.vtable.size())
            info.vtable.resize(super.vtable.size(), NO_METHOD);
        for (size_t s = 0; s < super.vtable.size(); ++s) {
            if (info.vtable[s] == NO_METHOD)
                info.vtable[s] = super.vtable[s];
        }
    }
    AREGION_ASSERT(static_cast<int>(info.vtable.size()) <= maxVtableSlots,
                   "class ", info.name, " exceeds vtable slot budget");
    classes.push_back(std::move(info));
    return classes.back().id;
}

MethodId
Program::addMethod(MethodInfo info)
{
    info.id = static_cast<MethodId>(methods.size());
    methods.push_back(std::move(info));
    return methods.back().id;
}

const ClassInfo &
Program::cls(ClassId id) const
{
    AREGION_ASSERT(id >= 0 && id < numClasses(), "bad class id ", id);
    return classes[static_cast<size_t>(id)];
}

ClassInfo &
Program::classMutable(ClassId id)
{
    AREGION_ASSERT(id >= 0 && id < numClasses(), "bad class id ", id);
    return classes[static_cast<size_t>(id)];
}

const MethodInfo &
Program::method(MethodId id) const
{
    AREGION_ASSERT(id >= 0 && id < numMethods(), "bad method id ", id);
    return methods[static_cast<size_t>(id)];
}

MethodInfo &
Program::methodMutable(MethodId id)
{
    AREGION_ASSERT(id >= 0 && id < numMethods(), "bad method id ", id);
    return methods[static_cast<size_t>(id)];
}

bool
Program::isSubclassOf(ClassId sub, ClassId ancestor) const
{
    while (sub != NO_CLASS) {
        if (sub == ancestor)
            return true;
        sub = cls(sub).superId;
    }
    return false;
}

MethodId
Program::resolveVirtual(ClassId receiver, int slot) const
{
    const MethodId m = tryResolveVirtual(receiver, slot);
    if (m == NO_METHOD) {
        AREGION_PANIC("unresolved vtable slot ", slot, " on class ",
                      cls(receiver).name);
    }
    return m;
}

MethodId
Program::tryResolveVirtual(ClassId receiver, int slot) const
{
    AREGION_ASSERT(slot >= 0, "negative vtable slot");
    for (ClassId c = receiver; c != NO_CLASS; c = cls(c).superId) {
        const ClassInfo &info = cls(c);
        if (slot < static_cast<int>(info.vtable.size()) &&
            info.vtable[static_cast<size_t>(slot)] != NO_METHOD) {
            return info.vtable[static_cast<size_t>(slot)];
        }
    }
    return NO_METHOD;
}

} // namespace aregion::vm
