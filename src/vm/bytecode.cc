#include "vm/bytecode.hh"

#include <sstream>

namespace aregion::vm {

const char *
bcName(Bc op)
{
    switch (op) {
      case Bc::Const: return "const";
      case Bc::Mov: return "mov";
      case Bc::Add: return "add";
      case Bc::Sub: return "sub";
      case Bc::Mul: return "mul";
      case Bc::Div: return "div";
      case Bc::Rem: return "rem";
      case Bc::And: return "and";
      case Bc::Or: return "or";
      case Bc::Xor: return "xor";
      case Bc::Shl: return "shl";
      case Bc::Shr: return "shr";
      case Bc::CmpEq: return "cmpeq";
      case Bc::CmpNe: return "cmpne";
      case Bc::CmpLt: return "cmplt";
      case Bc::CmpLe: return "cmple";
      case Bc::CmpGt: return "cmpgt";
      case Bc::CmpGe: return "cmpge";
      case Bc::Branch: return "branch";
      case Bc::Jump: return "jump";
      case Bc::NewObject: return "newobject";
      case Bc::NewArray: return "newarray";
      case Bc::GetField: return "getfield";
      case Bc::PutField: return "putfield";
      case Bc::ALoad: return "aload";
      case Bc::AStore: return "astore";
      case Bc::ALength: return "alength";
      case Bc::CallStatic: return "callstatic";
      case Bc::CallVirtual: return "callvirtual";
      case Bc::Ret: return "ret";
      case Bc::RetVoid: return "retvoid";
      case Bc::MonitorEnter: return "monitorenter";
      case Bc::MonitorExit: return "monitorexit";
      case Bc::InstanceOf: return "instanceof";
      case Bc::CheckCast: return "checkcast";
      case Bc::Safepoint: return "safepoint";
      case Bc::Print: return "print";
      case Bc::Marker: return "marker";
      case Bc::Spawn: return "spawn";
    }
    return "<bad>";
}

bool
bcIsTerminator(Bc op)
{
    return op == Bc::Jump || op == Bc::Ret || op == Bc::RetVoid;
}

std::string
BcInstr::toString() const
{
    std::ostringstream os;
    os << bcName(op) << " a=" << a << " b=" << b << " c=" << c
       << " imm=" << imm;
    if (!args.empty()) {
        os << " args=[";
        for (size_t i = 0; i < args.size(); ++i)
            os << (i ? "," : "") << args[i];
        os << "]";
    }
    return os.str();
}

} // namespace aregion::vm
