/**
 * @file
 * Runtime traps: the managed language's safety-check failures.
 *
 * Thrown by the interpreter, the IR evaluator, and the machine
 * simulator alike, so equivalence tests can compare trapping behaviour
 * across all three executors.
 */

#ifndef AREGION_VM_TRAP_HH
#define AREGION_VM_TRAP_HH

#include <stdexcept>
#include <string>

namespace aregion::vm {

enum class TrapKind {
    NullPointer,
    ArrayBounds,
    NegativeArraySize,
    DivideByZero,
    ClassCast,
    Deadlock,
};

const char *trapName(TrapKind kind);

/** A safety-check failure; carries the faulting method and pc. */
class Trap : public std::runtime_error
{
  public:
    Trap(TrapKind kind, int method, int pc);

    TrapKind kind;
    int method;
    int pc;
};

} // namespace aregion::vm

#endif // AREGION_VM_TRAP_HH
