/**
 * @file
 * Reference bytecode interpreter with profiling instrumentation.
 *
 * Plays the role of the JVM's first execution tier: it defines the
 * language's observable semantics (the machine simulator must match
 * it bit-for-bit) and gathers the profiles that drive region
 * formation. Threads are deterministic: a round-robin scheduler
 * switches contexts every `quantum` instructions.
 */

#ifndef AREGION_VM_INTERPRETER_HH
#define AREGION_VM_INTERPRETER_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "vm/heap.hh"
#include "vm/profile.hh"
#include "vm/program.hh"
#include "vm/trap.hh"

namespace aregion::vm {

/** One sampling-marker crossing (see runtime/sampling). */
struct MarkerEvent
{
    int64_t markerId;
    uint64_t instrCount;    ///< instructions executed when crossed
    MethodId method;
};

/** Result of a full interpreter run. */
struct InterpResult
{
    bool completed = false;         ///< main returned
    uint64_t instructions = 0;      ///< bytecodes executed (all threads)
    std::optional<Trap> trap;       ///< set if a trap terminated the run
};

/**
 * The interpreter. Construct, then call run(); observable state
 * (output stream, marker events, heap) stays available afterwards.
 */
class Interpreter
{
  public:
    /**
     * @param prog     program to execute
     * @param profile  optional profile to populate (may be nullptr)
     * @param max_words heap capacity
     * @param max_threads thread-context capacity (see Heap).
     */
    Interpreter(const Program &prog, Profile *profile = nullptr,
                uint64_t max_words = 1ull << 26,
                int max_threads = layout::MAX_THREADS);

    /** The interpreter borrows the program; temporaries would dangle. */
    Interpreter(Program &&, Profile * = nullptr, uint64_t = 0,
                int = 0) = delete;

    /**
     * Run main (and any spawned threads) to completion.
     * @param max_steps safety budget; the run fails if exceeded.
     */
    InterpResult run(uint64_t max_steps = 1ull << 32);

    const std::vector<int64_t> &output() const { return outputStream; }
    const std::vector<MarkerEvent> &markers() const { return markerLog; }
    Heap &heap() { return heapImpl; }

    /** FNV-1a checksum of the output stream (for compact test oracles). */
    uint64_t outputChecksum() const;

    /** Scheduler quantum in instructions (deterministic interleave). */
    uint64_t quantum = 50;

    /** When set, every method invocation is appended (in execution
     *  order) for SimPoint-style phase classification. */
    bool logInvocations = false;
    std::vector<MethodId> invocationLog;

  private:
    struct Frame
    {
        MethodId method;
        std::vector<int64_t> regs;
        size_t pc = 0;
        /** Receiver locked on entry for synchronized methods. */
        uint64_t syncReceiver = layout::NULL_REF;
        /** Caller's destination register for the return value. */
        Reg retDst = NO_REG;
    };

    struct ThreadCtx
    {
        int id = 0;
        std::vector<Frame> stack;
        bool finished = false;
        /** Object this thread is blocked acquiring, or NULL_REF. */
        uint64_t blockedOn = layout::NULL_REF;
    };

    /** Execute one instruction on the given thread. */
    void step(ThreadCtx &thread);

    /** Push a new frame for a call. */
    void invoke(ThreadCtx &thread, MethodId callee,
                const std::vector<int64_t> &argv, Reg ret_dst);

    /** Pop the current frame, writing the return value if any. */
    void doReturn(ThreadCtx &thread, std::optional<int64_t> value);

    /** Try to acquire obj's monitor; false -> caller must block. */
    bool monitorTryEnter(ThreadCtx &thread, uint64_t obj);
    void monitorExit(ThreadCtx &thread, uint64_t obj, int pc);

    int64_t &reg(Frame &frame, Reg r);
    uint64_t checkRef(int64_t value, MethodId m, int pc) const;

    const Program &prog;
    Profile *profile;
    Heap heapImpl;
    std::deque<ThreadCtx> threads;
    std::vector<int64_t> outputStream;
    std::vector<MarkerEvent> markerLog;
    uint64_t executed = 0;
};

} // namespace aregion::vm

#endif // AREGION_VM_INTERPRETER_HH
