#include "vm/heap.hh"

#include <algorithm>

#include "support/logging.hh"

namespace aregion::vm {

Heap::Heap(const Program &prog, uint64_t max_words,
           int max_threads)
    : maxWords(max_words), numThreads(max_threads)
{
    AREGION_ASSERT(numThreads > 0, "bad thread capacity ",
                   numThreads);
    fieldCounts.reserve(static_cast<size_t>(prog.numClasses()));
    for (ClassId c = 0; c < prog.numClasses(); ++c)
        fieldCounts.push_back(prog.cls(c).numFields());

    numClassesTotal = prog.numClasses();
    vtableBase = layout::POISON_WORDS;
    const auto vt_words = static_cast<uint64_t>(prog.numClasses()) *
                          Program::maxVtableSlots;
    subtypeBaseAddr = vtableBase + vt_words;
    const auto st_words =
        static_cast<uint64_t>(prog.numClasses() + 2) *
        static_cast<uint64_t>(std::max(prog.numClasses(), 1));
    yieldBase = subtypeBaseAddr + st_words;
    heapBaseAddr = yieldBase + static_cast<uint64_t>(numThreads);
    allocPtr = heapBaseAddr;
    mem.assign(heapBaseAddr, 0);

    // Subtype matrix (rows 0/1 stay zero for pseudo-classes).
    for (ClassId c = 0; c < prog.numClasses(); ++c) {
        for (ClassId t = 0; t < prog.numClasses(); ++t) {
            mem[subtypeBaseAddr +
                static_cast<uint64_t>(c + 2) *
                    static_cast<uint64_t>(prog.numClasses()) +
                static_cast<uint64_t>(t)] = prog.isSubclassOf(c, t);
        }
    }

    // Lay out vtable metadata: entry = resolved MethodId (walking the
    // superclass chain so inherited slots are flattened) or NO_METHOD.
    for (ClassId c = 0; c < prog.numClasses(); ++c) {
        for (int s = 0; s < Program::maxVtableSlots; ++s) {
            mem[vtableBase +
                static_cast<uint64_t>(c) * Program::maxVtableSlots +
                static_cast<uint64_t>(s)] =
                prog.tryResolveVirtual(c, s);
        }
    }
}

uint64_t
Heap::bump(uint64_t words)
{
    const uint64_t addr = allocPtr;
    allocPtr += words;
    if (allocPtr > maxWords) {
        AREGION_FATAL("heap exhausted: ", allocPtr, " > cap ", maxWords,
                      " words");
    }
    if (allocPtr > mem.size()) {
        // Grow in large steps to amortise reallocation.
        uint64_t target = mem.size() + mem.size() / 2 + 4096;
        if (target < allocPtr)
            target = allocPtr;
        if (target > maxWords)
            target = maxWords;
        mem.resize(target, 0);
    }
    return addr;
}

uint64_t
Heap::allocObject(ClassId cls)
{
    AREGION_ASSERT(cls >= 0 &&
                   static_cast<size_t>(cls) < fieldCounts.size(),
                   "bad class id in allocObject: ", cls);
    const uint64_t addr = bump(static_cast<uint64_t>(
        layout::OBJ_FIELD_BASE + fieldCounts[static_cast<size_t>(cls)]));
    mem[addr + layout::HDR_CLASS] = cls;
    mem[addr + layout::HDR_LOCK] = 0;
    return addr;
}

uint64_t
Heap::allocArray(int64_t length)
{
    AREGION_ASSERT(length >= 0, "negative array length reached heap");
    const uint64_t addr = bump(static_cast<uint64_t>(
        layout::ARR_ELEM_BASE + length));
    mem[addr + layout::HDR_CLASS] = layout::ARRAY_CLASS;
    mem[addr + layout::HDR_LOCK] = 0;
    mem[addr + layout::ARR_LEN] = length;
    return addr;
}

void
Heap::allocReset(uint64_t mark)
{
    AREGION_ASSERT(mark >= heapBaseAddr && mark <= allocPtr,
                   "bad alloc mark ", mark);
    for (uint64_t a = mark; a < allocPtr && a < mem.size(); ++a)
        mem[a] = 0;
    allocPtr = mark;
}

uint64_t
Heap::vtableAddr(ClassId cls, int slot) const
{
    return vtableBase + static_cast<uint64_t>(cls) *
           Program::maxVtableSlots + static_cast<uint64_t>(slot);
}

uint64_t
Heap::yieldFlagAddr(int thread) const
{
    AREGION_ASSERT(thread >= 0 && thread < numThreads,
                   "bad thread id ", thread);
    return yieldBase + static_cast<uint64_t>(thread);
}

} // namespace aregion::vm
