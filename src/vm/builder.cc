#include "vm/builder.hh"

#include "support/logging.hh"

namespace aregion::vm {

MethodBuilder::MethodBuilder(ProgramBuilder &owner_, MethodId method_)
    : owner(owner_), method(method_)
{
    const MethodInfo &info = owner.prog.method(method);
    numArgs = info.numArgs;
    nextReg = static_cast<Reg>(numArgs);
}

Reg
MethodBuilder::arg(int index) const
{
    AREGION_ASSERT(index >= 0 && index < numArgs, "bad arg index ", index);
    return static_cast<Reg>(index);
}

Reg
MethodBuilder::newReg()
{
    AREGION_ASSERT(nextReg < NO_REG - 1, "register budget exceeded");
    return nextReg++;
}

Label
MethodBuilder::newLabel()
{
    labelTargets.push_back(-1);
    return Label{static_cast<int>(labelTargets.size()) - 1};
}

void
MethodBuilder::bind(Label label)
{
    AREGION_ASSERT(label.id >= 0 &&
                   static_cast<size_t>(label.id) < labelTargets.size(),
                   "bind of undeclared label");
    AREGION_ASSERT(labelTargets[static_cast<size_t>(label.id)] == -1,
                   "label bound twice");
    labelTargets[static_cast<size_t>(label.id)] =
        static_cast<int>(code.size());
}

void
MethodBuilder::emit(BcInstr instr)
{
    AREGION_ASSERT(!finished, "emit after finish");
    code.push_back(std::move(instr));
}

Reg
MethodBuilder::constant(int64_t value)
{
    const Reg dst = newReg();
    constTo(dst, value);
    return dst;
}

void
MethodBuilder::constTo(Reg dst, int64_t value)
{
    emit({Bc::Const, dst, 0, 0, value, {}});
}

void
MethodBuilder::mov(Reg dst, Reg src)
{
    emit({Bc::Mov, dst, src, 0, 0, {}});
}

Reg
MethodBuilder::binop(Bc op, Reg lhs, Reg rhs)
{
    const Reg dst = newReg();
    binopTo(op, dst, lhs, rhs);
    return dst;
}

void
MethodBuilder::binopTo(Bc op, Reg dst, Reg lhs, Reg rhs)
{
    emit({op, dst, lhs, static_cast<uint16_t>(rhs), 0, {}});
}

Reg
MethodBuilder::addImm(Reg src, int64_t imm)
{
    const Reg tmp = constant(imm);
    return add(src, tmp);
}

void
MethodBuilder::branchIf(Reg cond, Label target)
{
    BcInstr in{Bc::Branch, cond, 0, 0, 0, {}};
    fixups.emplace_back(code.size(), target.id);
    emit(std::move(in));
}

void
MethodBuilder::branchCmp(Bc cmp_op, Reg a, Reg b, Label target)
{
    branchIf(cmp(cmp_op, a, b), target);
}

void
MethodBuilder::jump(Label target)
{
    BcInstr in{Bc::Jump, 0, 0, 0, 0, {}};
    fixups.emplace_back(code.size(), target.id);
    emit(std::move(in));
}

Reg
MethodBuilder::newObject(ClassId cls)
{
    const Reg dst = newReg();
    emit({Bc::NewObject, dst, 0, static_cast<uint16_t>(cls), 0, {}});
    return dst;
}

Reg
MethodBuilder::newArray(Reg length)
{
    const Reg dst = newReg();
    emit({Bc::NewArray, dst, length, 0, 0, {}});
    return dst;
}

Reg
MethodBuilder::getField(Reg obj, int field)
{
    const Reg dst = newReg();
    getFieldTo(dst, obj, field);
    return dst;
}

void
MethodBuilder::getFieldTo(Reg dst, Reg obj, int field)
{
    emit({Bc::GetField, dst, obj, static_cast<uint16_t>(field), 0, {}});
}

void
MethodBuilder::putField(Reg obj, int field, Reg value)
{
    emit({Bc::PutField, obj, value, static_cast<uint16_t>(field), 0, {}});
}

Reg
MethodBuilder::aload(Reg arr, Reg idx)
{
    const Reg dst = newReg();
    aloadTo(dst, arr, idx);
    return dst;
}

void
MethodBuilder::aloadTo(Reg dst, Reg arr, Reg idx)
{
    emit({Bc::ALoad, dst, arr, idx, 0, {}});
}

void
MethodBuilder::astore(Reg arr, Reg idx, Reg value)
{
    emit({Bc::AStore, arr, idx, static_cast<uint16_t>(value), 0, {}});
}

Reg
MethodBuilder::alength(Reg arr)
{
    const Reg dst = newReg();
    emit({Bc::ALength, dst, arr, 0, 0, {}});
    return dst;
}

Reg
MethodBuilder::callStatic(MethodId callee, const std::vector<Reg> &args)
{
    const Reg dst = newReg();
    emit({Bc::CallStatic, dst, 0, 0, callee, args});
    return dst;
}

void
MethodBuilder::callStaticVoid(MethodId callee, const std::vector<Reg> &args)
{
    emit({Bc::CallStatic, NO_REG, 0, 0, callee, args});
}

Reg
MethodBuilder::callVirtual(int slot, const std::vector<Reg> &args)
{
    const Reg dst = newReg();
    emit({Bc::CallVirtual, dst, static_cast<Reg>(slot), 0, 0, args});
    return dst;
}

void
MethodBuilder::callVirtualVoid(int slot, const std::vector<Reg> &args)
{
    emit({Bc::CallVirtual, NO_REG, static_cast<Reg>(slot), 0, 0, args});
}

void
MethodBuilder::ret(Reg value)
{
    emit({Bc::Ret, value, 0, 0, 0, {}});
}

void
MethodBuilder::retVoid()
{
    emit({Bc::RetVoid, 0, 0, 0, 0, {}});
}

void
MethodBuilder::monitorEnter(Reg obj)
{
    emit({Bc::MonitorEnter, obj, 0, 0, 0, {}});
}

void
MethodBuilder::monitorExit(Reg obj)
{
    emit({Bc::MonitorExit, obj, 0, 0, 0, {}});
}

Reg
MethodBuilder::instanceOf(Reg obj, ClassId cls)
{
    const Reg dst = newReg();
    emit({Bc::InstanceOf, dst, obj, static_cast<uint16_t>(cls), 0, {}});
    return dst;
}

void
MethodBuilder::checkCast(Reg obj, ClassId cls)
{
    emit({Bc::CheckCast, obj, 0, static_cast<uint16_t>(cls), 0, {}});
}

void
MethodBuilder::safepoint()
{
    emit({Bc::Safepoint, 0, 0, 0, 0, {}});
}

void
MethodBuilder::print(Reg value)
{
    emit({Bc::Print, value, 0, 0, 0, {}});
}

void
MethodBuilder::marker(int64_t id)
{
    emit({Bc::Marker, 0, 0, 0, id, {}});
}

void
MethodBuilder::spawn(MethodId callee, const std::vector<Reg> &args)
{
    emit({Bc::Spawn, 0, 0, 0, callee, args});
}

void
MethodBuilder::finish()
{
    AREGION_ASSERT(!finished, "finish called twice");
    finished = true;
    for (const auto &[index, label] : fixups) {
        const int target = labelTargets[static_cast<size_t>(label)];
        AREGION_ASSERT(target >= 0, "unbound label ", label,
                       " in method ", method);
        code[index].imm = target;
    }
    MethodInfo &info = owner.prog.methodMutable(method);
    info.numRegs = nextReg;
    info.code = std::move(code);
    owner.defined[static_cast<size_t>(method)] = true;
}

ClassId
ProgramBuilder::declareClass(const std::string &name,
                             const std::vector<std::string> &own_fields,
                             ClassId super)
{
    ClassInfo info;
    info.name = name;
    info.superId = super;
    info.fields = own_fields;
    return prog.addClass(std::move(info));
}

int
ProgramBuilder::fieldIndex(ClassId cls, const std::string &name) const
{
    const ClassInfo &info = prog.cls(cls);
    for (size_t i = 0; i < info.fields.size(); ++i) {
        if (info.fields[i] == name)
            return static_cast<int>(i);
    }
    AREGION_PANIC("class ", info.name, " has no field ", name);
}

int
ProgramBuilder::virtualSlot(const std::string &name)
{
    auto [it, inserted] = slots.emplace(
        name, static_cast<int>(slots.size()));
    (void)inserted;
    AREGION_ASSERT(it->second < Program::maxVtableSlots,
                   "virtual slot budget exceeded");
    return it->second;
}

MethodId
ProgramBuilder::declareMethod(const std::string &name, int num_args,
                              bool is_synchronized)
{
    MethodInfo info;
    info.name = name;
    info.numArgs = num_args;
    info.numRegs = num_args;
    info.isSynchronized = is_synchronized;
    if (is_synchronized) {
        AREGION_ASSERT(num_args >= 1,
                       "synchronized method needs a receiver");
    }
    const MethodId id = prog.addMethod(std::move(info));
    defined.push_back(false);
    return id;
}

MethodId
ProgramBuilder::declareVirtual(ClassId cls, const std::string &slot_name,
                               int num_args, bool is_synchronized)
{
    const MethodId id = declareMethod(
        prog.cls(cls).name + "." + slot_name, num_args, is_synchronized);
    bindVirtual(cls, slot_name, id);
    return id;
}

void
ProgramBuilder::bindVirtual(ClassId cls, const std::string &slot_name,
                            MethodId method)
{
    const int slot = virtualSlot(slot_name);
    auto &info = prog.classMutable(cls);
    if (static_cast<int>(info.vtable.size()) <= slot)
        info.vtable.resize(static_cast<size_t>(slot) + 1, NO_METHOD);
    info.vtable[static_cast<size_t>(slot)] = method;
    auto &minfo = prog.methodMutable(method);
    minfo.classId = cls;
}

MethodBuilder
ProgramBuilder::define(MethodId method)
{
    AREGION_ASSERT(!defined[static_cast<size_t>(method)],
                   "method ", method, " defined twice");
    return MethodBuilder(*this, method);
}

void
ProgramBuilder::setMain(MethodId method)
{
    prog.mainMethod = method;
}

Program
ProgramBuilder::build()
{
    for (size_t m = 0; m < defined.size(); ++m) {
        AREGION_ASSERT(defined[m], "method ", prog.method(
            static_cast<MethodId>(m)).name, " was never defined");
    }
    AREGION_ASSERT(prog.mainMethod != NO_METHOD, "no main method set");
    return std::move(prog);
}

} // namespace aregion::vm
