/**
 * @file
 * Java-style 64-bit integer arithmetic, defined for all inputs.
 *
 * Shared by every executor (interpreter, IR evaluator, machine
 * simulator) so observable results agree bit-for-bit.
 */

#ifndef AREGION_VM_ARITH_HH
#define AREGION_VM_ARITH_HH

#include <cstdint>

namespace aregion::vm::arith {

/** Wrapping add/sub/mul (Java semantics; avoids C++ signed-overflow
 *  undefined behaviour). */
inline int64_t
javaAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

inline int64_t
javaSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

inline int64_t
javaMul(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                static_cast<uint64_t>(b));
}

/** Truncating division; INT64_MIN / -1 wraps to INT64_MIN. The
 *  caller checks for a zero divisor (DivCheck / trap). */
inline int64_t
javaDiv(int64_t a, int64_t b)
{
    if (a == INT64_MIN && b == -1)
        return INT64_MIN;
    return a / b;
}

/** Remainder matching javaDiv; INT64_MIN % -1 is 0. */
inline int64_t
javaRem(int64_t a, int64_t b)
{
    if (a == INT64_MIN && b == -1)
        return 0;
    return a % b;
}

/** Left shift with Java's 6-bit count masking. */
inline int64_t
javaShl(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) << (b & 63));
}

/** Arithmetic right shift with 6-bit count masking. */
inline int64_t
javaShr(int64_t a, int64_t b)
{
    return a >> (b & 63);
}

} // namespace aregion::vm::arith

#endif // AREGION_VM_ARITH_HH
