/**
 * @file
 * Static well-formedness checks for bytecode programs.
 *
 * Run before interpretation or compilation; catches malformed builder
 * output early so downstream components can assume structural
 * validity (in-range registers, bound branch targets, matching call
 * arities, terminating method bodies).
 */

#ifndef AREGION_VM_VERIFIER_HH
#define AREGION_VM_VERIFIER_HH

#include <string>
#include <vector>

#include "vm/program.hh"

namespace aregion::vm {

/** Verify the whole program; returns human-readable problems. */
std::vector<std::string> verify(const Program &prog);

/** Verify and panic on the first problem (for tests/workloads). */
void verifyOrDie(const Program &prog);

} // namespace aregion::vm

#endif // AREGION_VM_VERIFIER_HH
