#include "vm/trap.hh"

#include <sstream>

namespace aregion::vm {

const char *
trapName(TrapKind kind)
{
    switch (kind) {
      case TrapKind::NullPointer: return "NullPointer";
      case TrapKind::ArrayBounds: return "ArrayBounds";
      case TrapKind::NegativeArraySize: return "NegativeArraySize";
      case TrapKind::DivideByZero: return "DivideByZero";
      case TrapKind::ClassCast: return "ClassCast";
      case TrapKind::Deadlock: return "Deadlock";
    }
    return "<bad>";
}

namespace {

std::string
describe(TrapKind kind, int method, int pc)
{
    std::ostringstream os;
    os << "trap " << trapName(kind) << " at method " << method
       << " pc " << pc;
    return os.str();
}

} // namespace

Trap::Trap(TrapKind kind_, int method_, int pc_)
    : std::runtime_error(describe(kind_, method_, pc_)),
      kind(kind_), method(method_), pc(pc_)
{
}

} // namespace aregion::vm
