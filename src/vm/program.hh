/**
 * @file
 * Whole-program container: classes (single inheritance, vtables,
 * instance fields) and methods (bytecode bodies).
 */

#ifndef AREGION_VM_PROGRAM_HH
#define AREGION_VM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "vm/bytecode.hh"

namespace aregion::vm {

using ClassId = int;
using MethodId = int;

constexpr ClassId NO_CLASS = -1;
constexpr MethodId NO_METHOD = -1;

/** A class: fields are flattened (superclass fields first). */
struct ClassInfo
{
    std::string name;
    ClassId id = NO_CLASS;
    ClassId superId = NO_CLASS;

    /** All instance field names, including inherited ones. */
    std::vector<std::string> fields;

    /** Virtual dispatch table: slot -> MethodId (NO_METHOD if empty). */
    std::vector<MethodId> vtable;

    int numFields() const { return static_cast<int>(fields.size()); }
};

/** A method: register-based bytecode body plus metadata. */
struct MethodInfo
{
    std::string name;
    MethodId id = NO_METHOD;
    ClassId classId = NO_CLASS;     ///< NO_CLASS for static helpers
    int numArgs = 0;                ///< includes receiver for virtuals
    int numRegs = 0;                ///< frame size; args live in [0,numArgs)
    bool isSynchronized = false;    ///< monitor on receiver around body
    std::vector<BcInstr> code;
};

/**
 * A complete program. Built via vm::ProgramBuilder; immutable during
 * execution except that the JIT may attach compiled code elsewhere.
 */
class Program
{
  public:
    /** Number of vtable slots reserved per class in metadata memory. */
    static constexpr int maxVtableSlots = 16;

    ClassId addClass(ClassInfo info);
    MethodId addMethod(MethodInfo info);

    const ClassInfo &cls(ClassId id) const;
    ClassInfo &classMutable(ClassId id);
    const MethodInfo &method(MethodId id) const;
    MethodInfo &methodMutable(MethodId id);

    int numClasses() const { return static_cast<int>(classes.size()); }
    int numMethods() const { return static_cast<int>(methods.size()); }

    /** True if sub is cls or a transitive subclass of ancestor. */
    bool isSubclassOf(ClassId sub, ClassId ancestor) const;

    /** Resolve a virtual slot for a dynamic receiver class. */
    MethodId resolveVirtual(ClassId receiver, int slot) const;

    /** As resolveVirtual, but NO_METHOD instead of panicking. */
    MethodId tryResolveVirtual(ClassId receiver, int slot) const;

    MethodId mainMethod = NO_METHOD;

  private:
    std::vector<ClassInfo> classes;
    std::vector<MethodInfo> methods;
};

} // namespace aregion::vm

#endif // AREGION_VM_PROGRAM_HH
