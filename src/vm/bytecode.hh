/**
 * @file
 * Bytecode definition for the managed-language VM substrate.
 *
 * The paper evaluates atomic regions inside a JVM; we substitute a
 * small register-based, class-oriented bytecode with the same
 * structural features the optimizations depend on: implicit null and
 * bounds checks, frequent small virtual methods, monitors
 * (synchronized methods), biased branches, and GC safepoints.
 */

#ifndef AREGION_VM_BYTECODE_HH
#define AREGION_VM_BYTECODE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace aregion::vm {

/** Register index inside a method frame. */
using Reg = uint16_t;

/** Sentinel destination register for calls whose result is unused. */
constexpr Reg NO_REG = 0xffff;

/** Bytecode opcodes. */
enum class Bc : uint8_t {
    Const,      ///< a <- imm
    Mov,        ///< a <- b

    Add, Sub, Mul, Div, Rem,        ///< a <- b op c (Div/Rem trap on 0)
    And, Or, Xor, Shl, Shr,         ///< a <- b op c

    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe, ///< a <- (b op c) ? 1 : 0

    Branch,     ///< if a != 0 goto imm
    Jump,       ///< goto imm

    NewObject,  ///< a <- new instance of class c
    NewArray,   ///< a <- new array of length reg b (traps if negative)

    GetField,   ///< a <- b.field[c]     (null check)
    PutField,   ///< a.field[c] <- b     (null check)

    ALoad,      ///< a <- b[c]           (null + bounds check)
    AStore,     ///< a[b] <- c           (null + bounds check)
    ALength,    ///< a <- b.length       (null check)

    CallStatic, ///< a <- call method imm(args...)
    CallVirtual,///< a <- call vtable slot b of args[0] (null check)

    Ret,        ///< return a
    RetVoid,    ///< return

    MonitorEnter, ///< lock object in a (null check)
    MonitorExit,  ///< unlock object in a (null check)

    InstanceOf, ///< a <- (b instanceof class c) ? 1 : 0 (null -> 0)
    CheckCast,  ///< trap unless a is null or instance of class c

    Safepoint,  ///< GC/yield poll (loop back edges)
    Print,      ///< append reg a to the observable output stream
    Marker,     ///< sampling marker, id = imm (see runtime/sampling)
    Spawn,      ///< start a new thread running method imm(args...)
};

/** Human-readable opcode name. */
const char *bcName(Bc op);

/** True for opcodes that unconditionally end straight-line execution. */
bool bcIsTerminator(Bc op);

/**
 * One bytecode instruction. Field meaning depends on the opcode; see
 * the Bc enum comments (a/b/c are registers unless stated otherwise).
 */
struct BcInstr
{
    Bc op;
    Reg a = 0;
    Reg b = 0;
    uint16_t c = 0;             ///< register, field index, or class id
    int64_t imm = 0;            ///< constant, branch target, method id
    std::vector<Reg> args;      ///< call/spawn arguments

    std::string toString() const;
};

} // namespace aregion::vm

#endif // AREGION_VM_BYTECODE_HH
