#include "vm/verifier.hh"

#include <sstream>

#include "support/logging.hh"

namespace aregion::vm {

namespace {

class MethodChecker
{
  public:
    MethodChecker(const Program &prog_, const MethodInfo &info_,
                  std::vector<std::string> &problems_)
        : prog(prog_), info(info_), problems(problems_)
    {
    }

    void
    report(size_t pc, const std::string &what)
    {
        std::ostringstream os;
        os << "method " << info.name << " pc " << pc << ": " << what;
        problems.push_back(os.str());
    }

    void
    checkReg(size_t pc, Reg r, const char *role)
    {
        if (r >= info.numRegs)
            report(pc, std::string("register out of range for ") + role);
    }

    void
    checkTarget(size_t pc, int64_t target)
    {
        if (target < 0 ||
            target >= static_cast<int64_t>(info.code.size())) {
            report(pc, "branch target out of range");
        }
    }

    void
    checkCallee(size_t pc, int64_t callee, size_t argc)
    {
        if (callee < 0 || callee >= prog.numMethods()) {
            report(pc, "callee method id out of range");
            return;
        }
        const MethodInfo &ci = prog.method(static_cast<MethodId>(callee));
        if (static_cast<size_t>(ci.numArgs) != argc)
            report(pc, "call arity mismatch for " + ci.name);
    }

    void
    checkClass(size_t pc, int64_t cls)
    {
        if (cls < 0 || cls >= prog.numClasses())
            report(pc, "class id out of range");
    }

    void
    run()
    {
        if (info.code.empty()) {
            report(0, "empty body");
            return;
        }
        if (!bcIsTerminator(info.code.back().op))
            report(info.code.size() - 1, "body does not end in terminator");
        if (info.numArgs > info.numRegs)
            report(0, "more args than registers");

        for (size_t pc = 0; pc < info.code.size(); ++pc) {
            const BcInstr &in = info.code[pc];
            for (Reg r : in.args)
                checkReg(pc, r, "call argument");
            switch (in.op) {
              case Bc::Const:
                checkReg(pc, in.a, "dst");
                break;
              case Bc::Mov:
              case Bc::ALength:
                checkReg(pc, in.a, "dst");
                checkReg(pc, in.b, "src");
                break;
              case Bc::Add: case Bc::Sub: case Bc::Mul: case Bc::Div:
              case Bc::Rem: case Bc::And: case Bc::Or: case Bc::Xor:
              case Bc::Shl: case Bc::Shr:
              case Bc::CmpEq: case Bc::CmpNe: case Bc::CmpLt:
              case Bc::CmpLe: case Bc::CmpGt: case Bc::CmpGe:
                checkReg(pc, in.a, "dst");
                checkReg(pc, in.b, "lhs");
                checkReg(pc, static_cast<Reg>(in.c), "rhs");
                break;
              case Bc::Branch:
                checkReg(pc, in.a, "cond");
                checkTarget(pc, in.imm);
                if (pc + 1 >= info.code.size())
                    report(pc, "branch fall-through exits method");
                break;
              case Bc::Jump:
                checkTarget(pc, in.imm);
                break;
              case Bc::NewObject:
                checkReg(pc, in.a, "dst");
                checkClass(pc, in.c);
                break;
              case Bc::NewArray:
                checkReg(pc, in.a, "dst");
                checkReg(pc, in.b, "length");
                break;
              case Bc::GetField: {
                checkReg(pc, in.a, "dst");
                checkReg(pc, in.b, "object");
                break;
              }
              case Bc::PutField:
                checkReg(pc, in.a, "object");
                checkReg(pc, in.b, "value");
                break;
              case Bc::ALoad:
                checkReg(pc, in.a, "dst");
                checkReg(pc, in.b, "array");
                checkReg(pc, static_cast<Reg>(in.c), "index");
                break;
              case Bc::AStore:
                checkReg(pc, in.a, "array");
                checkReg(pc, in.b, "index");
                checkReg(pc, static_cast<Reg>(in.c), "value");
                break;
              case Bc::CallStatic:
                if (in.a != NO_REG)
                    checkReg(pc, in.a, "dst");
                checkCallee(pc, in.imm, in.args.size());
                break;
              case Bc::CallVirtual:
                if (in.a != NO_REG)
                    checkReg(pc, in.a, "dst");
                if (in.args.empty())
                    report(pc, "virtual call without receiver");
                break;
              case Bc::Ret:
                checkReg(pc, in.a, "value");
                break;
              case Bc::RetVoid:
                break;
              case Bc::MonitorEnter:
              case Bc::MonitorExit:
                checkReg(pc, in.a, "object");
                break;
              case Bc::InstanceOf:
                checkReg(pc, in.a, "dst");
                checkReg(pc, in.b, "object");
                checkClass(pc, in.c);
                break;
              case Bc::CheckCast:
                checkReg(pc, in.a, "object");
                checkClass(pc, in.c);
                break;
              case Bc::Safepoint:
              case Bc::Marker:
                break;
              case Bc::Print:
                checkReg(pc, in.a, "value");
                break;
              case Bc::Spawn:
                checkCallee(pc, in.imm, in.args.size());
                break;
            }
        }
    }

  private:
    const Program &prog;
    const MethodInfo &info;
    std::vector<std::string> &problems;
};

} // namespace

std::vector<std::string>
verify(const Program &prog)
{
    std::vector<std::string> problems;
    if (prog.mainMethod == NO_METHOD) {
        problems.push_back("no main method");
    } else if (prog.method(prog.mainMethod).numArgs != 0) {
        problems.push_back("main takes arguments");
    }
    for (MethodId m = 0; m < prog.numMethods(); ++m) {
        MethodChecker checker(prog, prog.method(m), problems);
        checker.run();
    }
    return problems;
}

void
verifyOrDie(const Program &prog)
{
    const auto problems = verify(prog);
    if (!problems.empty())
        AREGION_PANIC("verifier: ", problems.front(), " (",
                      problems.size(), " problems total)");
}

} // namespace aregion::vm
