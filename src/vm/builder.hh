/**
 * @file
 * Fluent construction API for programs and method bodies.
 *
 * Workloads, examples, and tests build bytecode through this API.
 * Classes are declared with their full field list; methods are
 * declared first (so call sites can reference them) and defined later
 * through a MethodBuilder with label-based control flow.
 */

#ifndef AREGION_VM_BUILDER_HH
#define AREGION_VM_BUILDER_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "vm/program.hh"

namespace aregion::vm {

class ProgramBuilder;

/** Forward-referencable jump target inside one method body. */
struct Label
{
    int id = -1;
};

/**
 * Builds one method body. Registers are allocated on demand; emit
 * helpers return the destination register for chaining.
 */
class MethodBuilder
{
  public:
    MethodBuilder(ProgramBuilder &owner, MethodId method);

    /** Registers [0, numArgs) hold the arguments. */
    Reg arg(int index) const;
    Reg self() const { return arg(0); }
    Reg newReg();

    Label newLabel();
    void bind(Label label);

    /** a <- imm */
    Reg constant(int64_t value);
    void constTo(Reg dst, int64_t value);
    void mov(Reg dst, Reg src);

    Reg binop(Bc op, Reg lhs, Reg rhs);
    void binopTo(Bc op, Reg dst, Reg lhs, Reg rhs);
    Reg add(Reg a, Reg b) { return binop(Bc::Add, a, b); }
    Reg sub(Reg a, Reg b) { return binop(Bc::Sub, a, b); }
    Reg mul(Reg a, Reg b) { return binop(Bc::Mul, a, b); }
    Reg cmp(Bc op, Reg a, Reg b) { return binop(op, a, b); }

    /** Add an immediate: dst <- src + imm (emits a Const). */
    Reg addImm(Reg src, int64_t imm);

    void branchIf(Reg cond, Label target);
    /** Compare-and-branch convenience: if (a op b) goto target. */
    void branchCmp(Bc cmp_op, Reg a, Reg b, Label target);
    void jump(Label target);

    Reg newObject(ClassId cls);
    Reg newArray(Reg length);

    Reg getField(Reg obj, int field);
    void getFieldTo(Reg dst, Reg obj, int field);
    void putField(Reg obj, int field, Reg value);

    Reg aload(Reg arr, Reg idx);
    void aloadTo(Reg dst, Reg arr, Reg idx);
    void astore(Reg arr, Reg idx, Reg value);
    Reg alength(Reg arr);

    Reg callStatic(MethodId callee, const std::vector<Reg> &args);
    void callStaticVoid(MethodId callee, const std::vector<Reg> &args);
    Reg callVirtual(int slot, const std::vector<Reg> &args);
    void callVirtualVoid(int slot, const std::vector<Reg> &args);

    void ret(Reg value);
    void retVoid();

    void monitorEnter(Reg obj);
    void monitorExit(Reg obj);

    Reg instanceOf(Reg obj, ClassId cls);
    void checkCast(Reg obj, ClassId cls);

    void safepoint();
    void print(Reg value);
    void marker(int64_t id);
    void spawn(MethodId callee, const std::vector<Reg> &args);

    /** Resolve labels and install the body into the program. */
    void finish();

  private:
    void emit(BcInstr instr);

    ProgramBuilder &owner;
    MethodId method;
    int numArgs;
    Reg nextReg;
    std::vector<BcInstr> code;
    std::vector<int> labelTargets;              ///< label id -> pc
    std::vector<std::pair<size_t, int>> fixups; ///< (instr, label id)
    bool finished = false;
};

/** Builds a whole program. */
class ProgramBuilder
{
  public:
    /** Declare a class; fields listed are the class's own fields. */
    ClassId declareClass(const std::string &name,
                         const std::vector<std::string> &own_fields,
                         ClassId super = NO_CLASS);

    /** Index of a field (own or inherited) by name. */
    int fieldIndex(ClassId cls, const std::string &name) const;

    /** Global virtual-slot namespace: same name -> same slot. */
    int virtualSlot(const std::string &name);

    /** Declare a method so call sites can reference it. */
    MethodId declareMethod(const std::string &name, int num_args,
                           bool is_synchronized = false);

    /** Declare and install a virtual method on a class's slot. */
    MethodId declareVirtual(ClassId cls, const std::string &slot_name,
                            int num_args, bool is_synchronized = false);

    /** Install an already-declared method into a class's slot. */
    void bindVirtual(ClassId cls, const std::string &slot_name,
                     MethodId method);

    /** Begin defining a declared method's body. */
    MethodBuilder define(MethodId method);

    void setMain(MethodId method);

    /** Finalize; panics if any declared method lacks a body. */
    Program build();

    Program &programRef() { return prog; }

  private:
    friend class MethodBuilder;

    Program prog;
    std::map<std::string, int> slots;
    std::vector<bool> defined;
};

} // namespace aregion::vm

#endif // AREGION_VM_BUILDER_HH
