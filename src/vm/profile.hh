/**
 * @file
 * Execution profiles gathered by the first-pass (interpreted) run.
 *
 * The paper's JVM "inserts instrumentation to profile program
 * behaviors (e.g., branches, virtual calls)"; region formation then
 * treats paths with branch bias below 1% as cold. We record, per
 * method: per-bytecode execution counts (giving block counts),
 * branch taken counts, virtual call receiver distributions, and
 * invocation counts.
 */

#ifndef AREGION_VM_PROFILE_HH
#define AREGION_VM_PROFILE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "vm/program.hh"

namespace aregion::vm {

/** Receiver class distribution observed at one virtual call site. */
struct CallSiteProfile
{
    std::map<ClassId, uint64_t> receivers;
    uint64_t total = 0;

    /** The single receiver covering at least the given bias, or
     *  NO_CLASS if the site is effectively polymorphic. */
    ClassId dominantReceiver(double bias = 0.90) const;
};

/** Per-method profile. */
struct MethodProfile
{
    std::vector<uint64_t> execCount;    ///< per bytecode index
    std::map<int, uint64_t> branchTaken;///< bytecode index -> taken
    std::map<int, CallSiteProfile> callSites;
    uint64_t invocations = 0;
};

/** Whole-program profile, indexed by MethodId. */
class Profile
{
  public:
    explicit Profile(const Program &prog);

    MethodProfile &forMethod(MethodId m);
    const MethodProfile &forMethod(MethodId m) const;

    /** Execution count of a bytecode index (0 if never run). */
    uint64_t execCount(MethodId m, int pc) const;

    /** Count of times the branch at pc was taken. */
    uint64_t takenCount(MethodId m, int pc) const;

    /** Probability the branch at pc is taken (0.5 if unobserved). */
    double takenBias(MethodId m, int pc) const;

    /** Summarize the profile into the process-wide telemetry
     *  registry (`profile.*` keys; see docs/TELEMETRY.md). The JIT
     *  pipeline calls this once after the profiling run. */
    void publishTelemetry() const;

  private:
    std::vector<MethodProfile> perMethod;
};

} // namespace aregion::vm

#endif // AREGION_VM_PROFILE_HH
