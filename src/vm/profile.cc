#include "vm/profile.hh"

#include "support/logging.hh"
#include "support/telemetry.hh"
#include "support/telemetry_keys.hh"

namespace aregion::vm {

ClassId
CallSiteProfile::dominantReceiver(double bias) const
{
    if (total == 0)
        return NO_CLASS;
    for (const auto &[cls, count] : receivers) {
        if (static_cast<double>(count) >=
            bias * static_cast<double>(total)) {
            return cls;
        }
    }
    return NO_CLASS;
}

Profile::Profile(const Program &prog)
{
    perMethod.resize(static_cast<size_t>(prog.numMethods()));
    for (MethodId m = 0; m < prog.numMethods(); ++m) {
        perMethod[static_cast<size_t>(m)].execCount.assign(
            prog.method(m).code.size(), 0);
    }
}

MethodProfile &
Profile::forMethod(MethodId m)
{
    AREGION_ASSERT(m >= 0 && static_cast<size_t>(m) < perMethod.size(),
                   "bad method id ", m);
    return perMethod[static_cast<size_t>(m)];
}

const MethodProfile &
Profile::forMethod(MethodId m) const
{
    AREGION_ASSERT(m >= 0 && static_cast<size_t>(m) < perMethod.size(),
                   "bad method id ", m);
    return perMethod[static_cast<size_t>(m)];
}

uint64_t
Profile::execCount(MethodId m, int pc) const
{
    const auto &prof = forMethod(m);
    if (pc < 0 || static_cast<size_t>(pc) >= prof.execCount.size())
        return 0;
    return prof.execCount[static_cast<size_t>(pc)];
}

uint64_t
Profile::takenCount(MethodId m, int pc) const
{
    const auto &prof = forMethod(m);
    auto it = prof.branchTaken.find(pc);
    return it == prof.branchTaken.end() ? 0 : it->second;
}

void
Profile::publishTelemetry() const
{
    namespace keys = telemetry::keys;
    uint64_t bytecodes = 0;
    uint64_t branch_sites = 0;
    uint64_t call_sites = 0;
    uint64_t invocations = 0;
    uint64_t methods_run = 0;
    for (const MethodProfile &prof : perMethod) {
        for (uint64_t count : prof.execCount)
            bytecodes += count;
        branch_sites += prof.branchTaken.size();
        call_sites += prof.callSites.size();
        invocations += prof.invocations;
        methods_run += prof.invocations > 0;
    }
    auto &reg = telemetry::Registry::global();
    reg.add(keys::kProfileMethods, methods_run);
    reg.add(keys::kProfileBytecodes, bytecodes);
    reg.add(keys::kProfileBranchSites, branch_sites);
    reg.add(keys::kProfileCallSites, call_sites);
    reg.add(keys::kProfileInvocations, invocations);
}

double
Profile::takenBias(MethodId m, int pc) const
{
    const uint64_t executed = execCount(m, pc);
    if (executed == 0)
        return 0.5;
    return static_cast<double>(takenCount(m, pc)) /
           static_cast<double>(executed);
}

} // namespace aregion::vm
