/**
 * @file
 * Flat-memory layout shared by the interpreter and the hardware
 * simulator.
 *
 * All managed state lives in one word-addressed (64-bit words) flat
 * memory so that compiled code's loads and stores carry real addresses
 * for the cache model and for atomic-region read/write-set tracking.
 *
 * Memory map:
 *   [0, POISON_WORDS)            unmapped; null-adjacent accesses trap
 *   [vtableBase, yieldBase)      read-only vtable metadata
 *   [yieldBase, heapBase)        per-thread yield/safepoint flags
 *   [heapBase, ...)              bump-allocated objects and arrays
 *
 * Object layout:   [classId][lockWord][field 0][field 1]...
 * Array layout:    [classId = ARRAY_CLASS][lockWord][length][elem 0]...
 * Lock word:       owner (threadId + 1) in the low 32 bits, recursion
 *                  depth in the high 32 bits; 0 means unlocked.
 */

#ifndef AREGION_VM_LAYOUT_HH
#define AREGION_VM_LAYOUT_HH

#include <cstdint>

namespace aregion::vm::layout {

/** The null reference. */
constexpr uint64_t NULL_REF = 0;

/** Words at the bottom of memory that are never mapped. */
constexpr uint64_t POISON_WORDS = 16;

/** Offsets from an object/array base address. */
constexpr int64_t HDR_CLASS = 0;
constexpr int64_t HDR_LOCK = 1;
constexpr int64_t OBJ_FIELD_BASE = 2;
constexpr int64_t ARR_LEN = 2;
constexpr int64_t ARR_ELEM_BASE = 3;

/** Pseudo class id stored in array headers. */
constexpr int64_t ARRAY_CLASS = -2;

/** Maximum hardware/interpreter thread contexts. */
constexpr int MAX_THREADS = 8;

/** Lock word encoding helpers. */
constexpr int64_t
lockWord(int owner_thread, int64_t depth)
{
    return (static_cast<int64_t>(owner_thread) + 1) |
           (depth << 32);
}

constexpr int
lockOwner(int64_t word)
{
    return static_cast<int>(word & 0xffffffff) - 1;
}

constexpr int64_t
lockDepth(int64_t word)
{
    return word >> 32;
}

} // namespace aregion::vm::layout

#endif // AREGION_VM_LAYOUT_HH
