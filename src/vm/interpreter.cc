#include "vm/interpreter.hh"

#include "support/logging.hh"
#include "vm/arith.hh"

namespace aregion::vm {

namespace {

int64_t
javaDiv(int64_t a, int64_t b, MethodId m, int pc)
{
    if (b == 0)
        throw Trap(TrapKind::DivideByZero, m, pc);
    return arith::javaDiv(a, b);
}

int64_t
javaRem(int64_t a, int64_t b, MethodId m, int pc)
{
    if (b == 0)
        throw Trap(TrapKind::DivideByZero, m, pc);
    return arith::javaRem(a, b);
}

using arith::javaShl;
using arith::javaShr;
using arith::javaAdd;
using arith::javaSub;
using arith::javaMul;

} // namespace

Interpreter::Interpreter(const Program &prog_, Profile *profile_,
                         uint64_t max_words, int max_threads)
    : prog(prog_), profile(profile_),
      heapImpl(prog_, max_words, max_threads)
{
}

int64_t &
Interpreter::reg(Frame &frame, Reg r)
{
    AREGION_ASSERT(r < frame.regs.size(), "register ", r,
                   " out of range in method ", frame.method);
    return frame.regs[r];
}

uint64_t
Interpreter::checkRef(int64_t value, MethodId m, int pc) const
{
    if (value == static_cast<int64_t>(layout::NULL_REF))
        throw Trap(TrapKind::NullPointer, m, pc);
    const auto addr = static_cast<uint64_t>(value);
    AREGION_ASSERT(heapImpl.inBounds(addr),
                   "corrupt reference ", value, " in method ", m,
                   " pc ", pc);
    return addr;
}

bool
Interpreter::monitorTryEnter(ThreadCtx &thread, uint64_t obj)
{
    const int64_t word = heapImpl.load(obj + layout::HDR_LOCK);
    const int owner = layout::lockOwner(word);
    if (owner == -1) {
        heapImpl.store(obj + layout::HDR_LOCK, layout::lockWord(
            thread.id, 1));
        return true;
    }
    if (owner == thread.id) {
        heapImpl.store(obj + layout::HDR_LOCK, layout::lockWord(
            thread.id, layout::lockDepth(word) + 1));
        return true;
    }
    return false;
}

void
Interpreter::monitorExit(ThreadCtx &thread, uint64_t obj, int pc)
{
    const int64_t word = heapImpl.load(obj + layout::HDR_LOCK);
    AREGION_ASSERT(layout::lockOwner(word) == thread.id,
                   "monitorexit by non-owner at pc ", pc);
    const int64_t depth = layout::lockDepth(word) - 1;
    heapImpl.store(obj + layout::HDR_LOCK,
                   depth == 0 ? 0 : layout::lockWord(thread.id, depth));
}

void
Interpreter::invoke(ThreadCtx &thread, MethodId callee,
                    const std::vector<int64_t> &argv, Reg ret_dst)
{
    const MethodInfo &info = prog.method(callee);
    AREGION_ASSERT(static_cast<int>(argv.size()) == info.numArgs,
                   "arity mismatch calling ", info.name);
    Frame frame;
    frame.method = callee;
    frame.regs.assign(static_cast<size_t>(info.numRegs), 0);
    for (size_t i = 0; i < argv.size(); ++i)
        frame.regs[i] = argv[i];
    frame.retDst = ret_dst;
    if (info.isSynchronized) {
        // Caller checked availability before committing to the call.
        const auto receiver = checkRef(argv.at(0), callee, 0);
        const bool ok = monitorTryEnter(thread, receiver);
        AREGION_ASSERT(ok, "synchronized invoke raced");
        frame.syncReceiver = receiver;
    }
    thread.stack.push_back(std::move(frame));
    if (profile)
        profile->forMethod(callee).invocations++;
    if (logInvocations)
        invocationLog.push_back(callee);
}

void
Interpreter::doReturn(ThreadCtx &thread, std::optional<int64_t> value)
{
    Frame done = std::move(thread.stack.back());
    thread.stack.pop_back();
    if (done.syncReceiver != layout::NULL_REF)
        monitorExit(thread, done.syncReceiver, -1);
    if (thread.stack.empty()) {
        thread.finished = true;
        return;
    }
    if (done.retDst != NO_REG) {
        AREGION_ASSERT(value.has_value(),
                       "void return into a destination register");
        reg(thread.stack.back(), done.retDst) = *value;
    }
}

void
Interpreter::step(ThreadCtx &thread)
{
    Frame &frame = thread.stack.back();
    const MethodInfo &info = prog.method(frame.method);
    AREGION_ASSERT(frame.pc < info.code.size(),
                   "pc fell off method ", info.name);
    const BcInstr &in = info.code[frame.pc];
    const auto m = frame.method;
    const auto pc = static_cast<int>(frame.pc);

    // Monitor acquisition may block without consuming the instruction;
    // handle those opcodes before any profiling side effects.
    if (in.op == Bc::MonitorEnter) {
        const auto obj = checkRef(reg(frame, in.a), m, pc);
        if (!monitorTryEnter(thread, obj)) {
            thread.blockedOn = obj;
            return;
        }
        thread.blockedOn = layout::NULL_REF;
        if (profile)
            profile->forMethod(m).execCount[frame.pc]++;
        ++executed;
        ++frame.pc;
        return;
    }
    if (in.op == Bc::CallStatic || in.op == Bc::CallVirtual) {
        // Resolve callee first so a synchronized callee whose monitor
        // is unavailable blocks the caller at the call site.
        std::vector<int64_t> argv;
        argv.reserve(in.args.size());
        for (Reg r : in.args)
            argv.push_back(reg(frame, r));

        MethodId callee;
        if (in.op == Bc::CallStatic) {
            callee = static_cast<MethodId>(in.imm);
        } else {
            const auto recv = checkRef(argv.at(0), m, pc);
            const auto cls = static_cast<ClassId>(
                heapImpl.load(recv + layout::HDR_CLASS));
            AREGION_ASSERT(cls != layout::ARRAY_CLASS,
                           "virtual call on array");
            callee = prog.resolveVirtual(cls, in.b);
            if (profile) {
                auto &site = profile->forMethod(m).callSites[pc];
                site.receivers[cls]++;
                site.total++;
            }
        }
        const MethodInfo &ci = prog.method(callee);
        if (ci.isSynchronized) {
            const auto recv = checkRef(argv.at(0), callee, 0);
            const int64_t word = heapImpl.load(recv + layout::HDR_LOCK);
            const int owner = layout::lockOwner(word);
            if (owner != -1 && owner != thread.id) {
                thread.blockedOn = recv;
                return;
            }
        }
        thread.blockedOn = layout::NULL_REF;
        if (profile)
            profile->forMethod(m).execCount[frame.pc]++;
        ++executed;
        ++frame.pc;
        invoke(thread, callee, argv, in.a);
        return;
    }

    if (profile)
        profile->forMethod(m).execCount[frame.pc]++;
    ++executed;

    switch (in.op) {
      case Bc::Const:
        reg(frame, in.a) = in.imm;
        break;
      case Bc::Mov:
        reg(frame, in.a) = reg(frame, in.b);
        break;
      case Bc::Add:
        reg(frame, in.a) = javaAdd(reg(frame, in.b), reg(frame, in.c));
        break;
      case Bc::Sub:
        reg(frame, in.a) = javaSub(reg(frame, in.b), reg(frame, in.c));
        break;
      case Bc::Mul:
        reg(frame, in.a) = javaMul(reg(frame, in.b), reg(frame, in.c));
        break;
      case Bc::Div:
        reg(frame, in.a) =
            javaDiv(reg(frame, in.b), reg(frame, in.c), m, pc);
        break;
      case Bc::Rem:
        reg(frame, in.a) =
            javaRem(reg(frame, in.b), reg(frame, in.c), m, pc);
        break;
      case Bc::And:
        reg(frame, in.a) = reg(frame, in.b) & reg(frame, in.c);
        break;
      case Bc::Or:
        reg(frame, in.a) = reg(frame, in.b) | reg(frame, in.c);
        break;
      case Bc::Xor:
        reg(frame, in.a) = reg(frame, in.b) ^ reg(frame, in.c);
        break;
      case Bc::Shl:
        reg(frame, in.a) = javaShl(reg(frame, in.b), reg(frame, in.c));
        break;
      case Bc::Shr:
        reg(frame, in.a) = javaShr(reg(frame, in.b), reg(frame, in.c));
        break;
      case Bc::CmpEq:
        reg(frame, in.a) = reg(frame, in.b) == reg(frame, in.c);
        break;
      case Bc::CmpNe:
        reg(frame, in.a) = reg(frame, in.b) != reg(frame, in.c);
        break;
      case Bc::CmpLt:
        reg(frame, in.a) = reg(frame, in.b) < reg(frame, in.c);
        break;
      case Bc::CmpLe:
        reg(frame, in.a) = reg(frame, in.b) <= reg(frame, in.c);
        break;
      case Bc::CmpGt:
        reg(frame, in.a) = reg(frame, in.b) > reg(frame, in.c);
        break;
      case Bc::CmpGe:
        reg(frame, in.a) = reg(frame, in.b) >= reg(frame, in.c);
        break;

      case Bc::Branch: {
        const bool taken = reg(frame, in.a) != 0;
        if (profile && taken)
            profile->forMethod(m).branchTaken[pc]++;
        if (taken) {
            frame.pc = static_cast<size_t>(in.imm);
            return;
        }
        break;
      }
      case Bc::Jump:
        frame.pc = static_cast<size_t>(in.imm);
        return;

      case Bc::NewObject:
        reg(frame, in.a) = static_cast<int64_t>(
            heapImpl.allocObject(static_cast<ClassId>(in.c)));
        break;
      case Bc::NewArray: {
        const int64_t len = reg(frame, in.b);
        if (len < 0)
            throw Trap(TrapKind::NegativeArraySize, m, pc);
        reg(frame, in.a) = static_cast<int64_t>(heapImpl.allocArray(len));
        break;
      }

      case Bc::GetField: {
        const auto obj = checkRef(reg(frame, in.b), m, pc);
        reg(frame, in.a) =
            heapImpl.load(obj + layout::OBJ_FIELD_BASE + in.c);
        break;
      }
      case Bc::PutField: {
        const auto obj = checkRef(reg(frame, in.a), m, pc);
        heapImpl.store(obj + layout::OBJ_FIELD_BASE + in.c,
                       reg(frame, in.b));
        break;
      }

      case Bc::ALoad: {
        const auto arr = checkRef(reg(frame, in.b), m, pc);
        const int64_t len = heapImpl.load(arr + layout::ARR_LEN);
        const int64_t idx = reg(frame, static_cast<Reg>(in.c));
        if (idx < 0 || idx >= len)
            throw Trap(TrapKind::ArrayBounds, m, pc);
        reg(frame, in.a) = heapImpl.load(
            arr + static_cast<uint64_t>(layout::ARR_ELEM_BASE + idx));
        break;
      }
      case Bc::AStore: {
        const auto arr = checkRef(reg(frame, in.a), m, pc);
        const int64_t len = heapImpl.load(arr + layout::ARR_LEN);
        const int64_t idx = reg(frame, in.b);
        if (idx < 0 || idx >= len)
            throw Trap(TrapKind::ArrayBounds, m, pc);
        heapImpl.store(
            arr + static_cast<uint64_t>(layout::ARR_ELEM_BASE + idx),
            reg(frame, static_cast<Reg>(in.c)));
        break;
      }
      case Bc::ALength: {
        const auto arr = checkRef(reg(frame, in.b), m, pc);
        reg(frame, in.a) = heapImpl.load(arr + layout::ARR_LEN);
        break;
      }

      case Bc::Ret:
        doReturn(thread, reg(frame, in.a));
        return;
      case Bc::RetVoid:
        doReturn(thread, std::nullopt);
        return;

      case Bc::MonitorExit: {
        const auto obj = checkRef(reg(frame, in.a), m, pc);
        monitorExit(thread, obj, pc);
        break;
      }

      case Bc::InstanceOf: {
        const int64_t value = reg(frame, in.b);
        if (value == static_cast<int64_t>(layout::NULL_REF)) {
            reg(frame, in.a) = 0;
        } else {
            const auto obj = checkRef(value, m, pc);
            const auto cls = static_cast<ClassId>(
                heapImpl.load(obj + layout::HDR_CLASS));
            reg(frame, in.a) =
                cls != layout::ARRAY_CLASS &&
                prog.isSubclassOf(cls, static_cast<ClassId>(in.c));
        }
        break;
      }
      case Bc::CheckCast: {
        const int64_t value = reg(frame, in.a);
        if (value != static_cast<int64_t>(layout::NULL_REF)) {
            const auto obj = checkRef(value, m, pc);
            const auto cls = static_cast<ClassId>(
                heapImpl.load(obj + layout::HDR_CLASS));
            if (cls == layout::ARRAY_CLASS ||
                !prog.isSubclassOf(cls, static_cast<ClassId>(in.c))) {
                throw Trap(TrapKind::ClassCast, m, pc);
            }
        }
        break;
      }

      case Bc::Safepoint:
        // The interpreter polls implicitly via the scheduler quantum;
        // the flag load only matters for compiled code.
        (void)heapImpl.load(heapImpl.yieldFlagAddr(thread.id));
        break;
      case Bc::Print:
        outputStream.push_back(reg(frame, in.a));
        break;
      case Bc::Marker:
        markerLog.push_back({in.imm, executed, m});
        break;

      case Bc::Spawn: {
        AREGION_ASSERT(threads.size() <
                           static_cast<size_t>(heapImpl.maxThreads()),
                       "thread limit exceeded");
        const auto callee = static_cast<MethodId>(in.imm);
        AREGION_ASSERT(!prog.method(callee).isSynchronized,
                       "cannot spawn a synchronized method");
        std::vector<int64_t> argv;
        for (Reg r : in.args)
            argv.push_back(reg(frame, r));
        ThreadCtx fresh;
        fresh.id = static_cast<int>(threads.size());
        threads.push_back(std::move(fresh));
        invoke(threads.back(), callee, argv, NO_REG);
        break;
      }

      case Bc::MonitorEnter:
      case Bc::CallStatic:
      case Bc::CallVirtual:
        AREGION_PANIC("handled above");
    }

    ++thread.stack.back().pc;
}

InterpResult
Interpreter::run(uint64_t max_steps)
{
    InterpResult result;
    ThreadCtx main;
    main.id = 0;
    threads.clear();
    threads.push_back(std::move(main));
    AREGION_ASSERT(prog.mainMethod != NO_METHOD, "program has no main");
    AREGION_ASSERT(prog.method(prog.mainMethod).numArgs == 0,
                   "main must take no arguments");
    invoke(threads[0], prog.mainMethod, {}, NO_REG);

    try {
        while (!threads[0].finished && executed < max_steps) {
            bool progressed = false;
            // Index-based loop: Spawn may grow the thread vector.
            for (size_t t = 0; t < threads.size(); ++t) {
                const uint64_t before = executed;
                for (uint64_t q = 0; q < quantum; ++q) {
                    ThreadCtx &ctx = threads[t];
                    if (ctx.finished || threads[0].finished)
                        break;
                    step(ctx);
                    if (ctx.blockedOn != layout::NULL_REF)
                        break;
                }
                if (executed != before)
                    progressed = true;
            }
            if (!progressed && !threads[0].finished)
                throw Trap(TrapKind::Deadlock, prog.mainMethod, 0);
        }
    } catch (const Trap &trap) {
        result.trap = trap;
        result.instructions = executed;
        return result;
    }

    result.completed = threads[0].finished;
    result.instructions = executed;
    return result;
}

uint64_t
Interpreter::outputChecksum() const
{
    uint64_t h = 1469598103934665603ULL;
    for (int64_t v : outputStream) {
        for (int b = 0; b < 8; ++b) {
            h ^= static_cast<uint64_t>(v >> (b * 8)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

} // namespace aregion::vm
