/**
 * @file
 * Flat word-addressed memory with bump allocation and vtable metadata.
 */

#ifndef AREGION_VM_HEAP_HH
#define AREGION_VM_HEAP_HH

#include <cstdint>
#include <vector>

#include "support/logging.hh"
#include "vm/layout.hh"
#include "vm/program.hh"

namespace aregion::vm {

/**
 * The managed memory image. One instance backs one execution (the
 * interpreter and the machine simulator each build their own, from the
 * same Program, so results are directly comparable).
 *
 * There is no garbage collector; workloads are written to bound their
 * live-heap growth, as the paper's sampling windows do.
 */
class Heap
{
  public:
    /**
     * @param max_threads yield/safepoint flag slots to map (one per
     *        thread context). The default keeps the historical memory
     *        map byte-identical; the contention harness raises it to
     *        run more hardware contexts than layout::MAX_THREADS.
     */
    explicit Heap(const Program &prog, uint64_t max_words = 1ull << 26,
                  int max_threads = layout::MAX_THREADS);

    /** Allocate an instance of the class; fields zero-initialised. */
    uint64_t allocObject(ClassId cls);

    /** Allocate an int/ref array; elements zero-initialised. */
    uint64_t allocArray(int64_t length);

    /** Raw zeroed allocation: the machine simulator writes headers
     *  itself so the writes flow through speculative buffering. */
    uint64_t allocRaw(uint64_t words) { return bump(words); }

    /** Flattened instance field count of a class. */
    int
    fieldCount(ClassId cls) const
    {
        return fieldCounts[static_cast<size_t>(cls)];
    }

    // Inline: these two are the memory interface of the machine
    // simulator's hottest loop, and an out-of-line call per access
    // dominates the load/store path.
    int64_t
    load(uint64_t addr) const
    {
        AREGION_ASSERT(inBounds(addr), "load out of bounds: ", addr);
        return mem[addr];
    }

    void
    store(uint64_t addr, int64_t value)
    {
        AREGION_ASSERT(inBounds(addr), "store out of bounds: ", addr);
        mem[addr] = value;
    }

    /** True if addr points into mapped memory (metadata or heap). */
    bool inBounds(uint64_t addr) const
    {
        return addr >= layout::POISON_WORDS && addr < mem.size();
    }

    /** Address of the vtable entry for (class, slot). */
    uint64_t vtableAddr(ClassId cls, int slot) const;

    /**
     * Subtype matrix metadata: row (classId + 2) x column (classId)
     * holds 1 when the row's class is a subclass of the column's.
     * Rows 0 and 1 (array and reserved pseudo-classes) are zero, so
     * compiled instanceof/checkcast can index with classId + 2
     * without branching on arrays.
     */
    uint64_t subtypeBase() const { return subtypeBaseAddr; }
    int subtypeColumns() const { return numClassesTotal; }

    /** Address of a thread's safepoint/yield poll flag. */
    uint64_t yieldFlagAddr(int thread) const;

    /**
     * Allocation watermark, for atomic-region rollback: objects
     * allocated inside an aborted region are reclaimed by resetting
     * the bump pointer to the mark (the reclaimed range is re-zeroed
     * so re-allocation sees fresh memory).
     */
    uint64_t allocMark() const { return allocPtr; }
    void allocReset(uint64_t mark);

    uint64_t heapBase() const { return heapBaseAddr; }
    uint64_t allocated() const { return allocPtr; }
    uint64_t wordsUsed() const { return allocPtr - heapBaseAddr; }
    int maxThreads() const { return numThreads; }

  private:
    uint64_t bump(uint64_t words);

    std::vector<int> fieldCounts;   ///< per-class flattened field count
    std::vector<int64_t> mem;
    uint64_t maxWords;
    int numThreads = layout::MAX_THREADS;
    int numClassesTotal = 0;
    uint64_t vtableBase = 0;
    uint64_t subtypeBaseAddr = 0;
    uint64_t yieldBase = 0;
    uint64_t heapBaseAddr = 0;
    uint64_t allocPtr = 0;
};

} // namespace aregion::vm

#endif // AREGION_VM_HEAP_HH
